/** @file Synthetic task generator tests. */

#include <gtest/gtest.h>

#include "nn/synthetic.h"

namespace pimdl {
namespace {

TEST(Synthetic, ShapesMatchConfig)
{
    SyntheticTaskConfig cfg;
    cfg.classes = 4;
    cfg.seq_len = 6;
    cfg.input_dim = 10;
    cfg.train_samples = 40;
    cfg.test_samples = 20;
    SyntheticTask task = makeSyntheticTask(cfg);
    EXPECT_EQ(task.train.size(), 40u);
    EXPECT_EQ(task.test.size(), 20u);
    EXPECT_EQ(task.train.features.rows(), 40u * 6u);
    EXPECT_EQ(task.train.features.cols(), 10u);
}

TEST(Synthetic, LabelsInRange)
{
    SyntheticTaskConfig cfg;
    cfg.classes = 5;
    for (TaskStyle style : {TaskStyle::SequencePairs, TaskStyle::PatchGrid}) {
        cfg.style = style;
        SyntheticTask task = makeSyntheticTask(cfg);
        for (auto l : task.train.labels)
            EXPECT_LT(l, 5u);
        for (auto l : task.test.labels)
            EXPECT_LT(l, 5u);
    }
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticTaskConfig cfg;
    SyntheticTask a = makeSyntheticTask(cfg);
    SyntheticTask b = makeSyntheticTask(cfg);
    EXPECT_EQ(maxAbsDiff(a.train.features, b.train.features), 0.0f);
    EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticTaskConfig cfg;
    SyntheticTask a = makeSyntheticTask(cfg);
    cfg.seed += 1;
    SyntheticTask b = makeSyntheticTask(cfg);
    EXPECT_GT(maxAbsDiff(a.train.features, b.train.features), 0.0f);
}

TEST(Synthetic, AllClassesRepresented)
{
    SyntheticTaskConfig cfg;
    cfg.classes = 4;
    cfg.train_samples = 256;
    SyntheticTask task = makeSyntheticTask(cfg);
    std::vector<int> counts(cfg.classes, 0);
    for (auto l : task.train.labels)
        counts[l]++;
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(Synthetic, NoiseControlsSeparation)
{
    // With zero noise, every same-label patch-grid sample differs only by
    // gain; cross-label distances dominate within-label distances.
    SyntheticTaskConfig cfg;
    cfg.style = TaskStyle::PatchGrid;
    cfg.noise = 0.0f;
    cfg.train_samples = 64;
    SyntheticTask task = makeSyntheticTask(cfg);

    // Find two samples with the same label and two with different labels.
    double same = -1.0, diff = -1.0;
    for (std::size_t i = 0; i < task.train.size() && (same < 0 || diff < 0);
         ++i) {
        for (std::size_t j = i + 1; j < task.train.size(); ++j) {
            Tensor a = task.train.sequence(i);
            Tensor b = task.train.sequence(j);
            double d = 0.0;
            for (std::size_t k = 0; k < a.size(); ++k) {
                const double delta = a.data()[k] - b.data()[k];
                d += delta * delta;
            }
            if (task.train.labels[i] == task.train.labels[j] && same < 0)
                same = d;
            if (task.train.labels[i] != task.train.labels[j] && diff < 0)
                diff = d;
            if (same >= 0 && diff >= 0)
                break;
        }
    }
    ASSERT_GE(same, 0.0);
    ASSERT_GE(diff, 0.0);
    EXPECT_LT(same, diff);
}

} // namespace
} // namespace pimdl
