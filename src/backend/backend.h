/**
 * @file
 * Pluggable timing backends: the interface every latency consumer
 * (engine, plan schedulers, tuner re-costing, serving simulators) goes
 * through to turn a lowered Plan into per-node and end-to-end timing.
 *
 * Two implementations ship (DESIGN.md Section 12):
 *  - AnalyticalBackend (analytical.h): the paper's closed-form model,
 *    Equations 3-10 plus the host rooflines — a golden-preserving
 *    relocation of the costing previously hard-coded in the engine.
 *  - TransactionBackend (transaction.h): a clocked command-level
 *    simulator in the spirit of PIMSIM-NN / LP5X-PIM Sim (PAPERS.md):
 *    per-bank PIM instruction queues, explicit broadcast/LUT-read/
 *    accumulate/transfer commands generated from the Plan, host-vs-PIM
 *    request arbitration with mode-switch overhead, DRAM refresh, and a
 *    co-located host DRAM traffic knob.
 *
 * Backend choice is a runtime switch: benches take
 * `--backend=analytical|transaction` and every default-constructed
 * engine honours the PIMDL_BACKEND environment variable.
 */

#ifndef PIMDL_BACKEND_BACKEND_H
#define PIMDL_BACKEND_BACKEND_H

#include <memory>
#include <string>

#include "host/host_model.h"
#include "pim/platform.h"
#include "plan/plan.h"
#include "plan/schedule.h"
#include "tuner/cost_model.h"

namespace pimdl {

/** Stable identifier of the built-in timing backends. */
enum class TimingBackendKind
{
    Analytical,
    Transaction,
};

/** Human-readable backend name ("analytical" / "transaction"). */
const char *timingBackendKindName(TimingBackendKind kind);

/**
 * Parses a backend spelling ("analytical", "transaction", plus the
 * short alias "txn"); returns false on anything else.
 */
bool parseTimingBackendKind(const std::string &name,
                            TimingBackendKind *out);

/**
 * Backend newly constructed engines default to: the PIMDL_BACKEND
 * environment variable when set (parsed as above; throws
 * std::runtime_error on an unknown spelling so CI matrix typos fail
 * loudly), otherwise Analytical.
 */
TimingBackendKind defaultTimingBackendKind();

/**
 * Knobs of the transaction-level simulator. Defaults model a DDR4-class
 * module; every field is a calibration parameter in the DESIGN.md sense.
 */
struct TransactionSimConfig
{
    /**
     * Co-located host DRAM traffic intensity: the fraction of each
     * arbitration quantum the memory controller grants to regular host
     * requests hitting the PIM banks. 0 disables arbitration entirely
     * (the zero-traffic run is bit-identical to a no-arbitration run).
     */
    double host_traffic_intensity = 0.0;
    /** Arbitration granting period, seconds. */
    double arbitration_quantum_s = 20e-6;
    /** One PIM-mode <-> memory-mode switch, seconds. */
    double mode_switch_s = 0.5e-6;
    /** Refresh command period per bank (tREFI), seconds. */
    double refresh_interval_s = 7.8e-6;
    /** Bank-unavailable window per refresh (tRFC), seconds. */
    double refresh_latency_s = 350e-9;
    /** Decode/issue overhead per bank command, seconds. */
    double cmd_issue_overhead_s = 20e-9;
    /**
     * Representative bank queues simulated per node. PEs run in
     * lock-step on identical tile shapes (cost_model.h), so a few
     * representative queues reproduce the full-module makespan.
     */
    std::size_t max_sim_banks = 4;
    /**
     * Per logical transfer stream (index loads, LUT chunk loads, ...),
     * coalesce the chunk sequence into at most this many commands.
     * Durations are conserved exactly; only event-loop granularity
     * changes.
     */
    std::size_t max_cmds_per_component = 64;
    /**
     * Budget of "backend.txn.tick" trace spans one backend instance may
     * emit: the first N node simulations are traced, later ones only
     * counted (backend.txn.trace_suppressed) so plan-heavy sweeps
     * cannot flood the bounded trace ring.
     */
    std::size_t trace_span_budget = 256;
    /** Keep a per-command execution log in reports (tests only). */
    bool record_commands = false;

    /** Throws std::runtime_error with a field-naming message when bad. */
    void validate() const;
};

/**
 * A timing backend: produces per-node costs for a lowered plan under
 * one PIM platform + host pair. Node costs are schedule-independent
 * (each node is timed from a quiet device), so every plan/schedule.h
 * scheduler composes with every backend unchanged.
 *
 * Also a LutTimingModel, so a backend can be injected into the tuner's
 * candidate search (AutoTuner::setTimingModel).
 */
class TimingBackend : public LutTimingModel
{
  public:
    virtual const char *name() const = 0;
    virtual TimingBackendKind kind() const = 0;

    /** Latency/traffic cost of one plan node under this backend. */
    virtual NodeCost costNode(const Plan &plan,
                              const PlanNode &node) const = 0;

    /** Costs every node of @p plan (assumed validated by the caller). */
    CostedPlan cost(const Plan &plan) const;
};

/**
 * Constructs a backend of @p kind bound to one platform/host pair.
 * @p txn_config only affects the transaction backend. Publishes the
 * "backend.impl" gauge (0 = analytical, 1 = transaction).
 */
std::unique_ptr<TimingBackend>
makeTimingBackend(TimingBackendKind kind, PimPlatformConfig platform,
                  HostProcessorConfig host,
                  const TransactionSimConfig &txn_config = {});

} // namespace pimdl

#endif // PIMDL_BACKEND_BACKEND_H
