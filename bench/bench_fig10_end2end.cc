/**
 * @file
 * Figure 10 reproduction: end-to-end throughput (a) and energy
 * efficiency (b) of DDR4-PIM PIM-DL against the CPU server.
 *
 * Workloads: BERT-base / BERT-large (seq 512, batch 64) and ViT-huge
 * (seq padded to 264, batch 128). Configurations: CPU FP32, CPU INT8
 * (GGML-style kernels on dual Xeon Gold 5218), GEMM offload to the
 * UPMEM PIM ("PIM" latency line of the figure, per layer), and PIM-DL
 * with V=2/CT=16 and V=4/CT=16 (INT8 LUTs). All speedups/efficiencies
 * are normalized to CPU FP32 as in the paper.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "runtime/engine.h"
#include "runtime/serving.h"

using namespace pimdl;
using namespace pimdl::bench;

int
main(int argc, char **argv)
{
    const pimdl::bench::BenchOptions opts =
        pimdl::bench::parseBenchArgs(argc, argv);
    printBanner(std::cout, "Figure 10-(a): End-to-end throughput");

    PimDlEngine engine(upmemPlatform(), xeon4210Dual(), opts.backend);
    const HostProcessorConfig cpu = xeonGold5218Dual();
    const LutNnParams v2{2, 16};
    const LutNnParams v4{4, 16};

    TablePrinter table({"Model", "Config", "Latency (s)",
                        "Latency/Layer (s)", "Speedup vs FP32"});
    std::vector<double> sp_v2_fp32, sp_v2_int8, sp_v4_fp32, sp_v4_int8;
    std::vector<double> sp_v2_pim, sp_v4_pim;
    std::vector<double> en_v2_fp32, en_v4_fp32, en_v2_int8, en_v4_int8;
    std::vector<double> en_v2_pim, en_v4_pim;

    struct Entry
    {
        const char *config;
        InferenceEstimate est;
    };

    std::vector<std::pair<TransformerConfig,
                          std::vector<Entry>>> all_results;

    // --smoke keeps CI fast: only the smallest paper workload.
    std::vector<TransformerConfig> models{bertBase()};
    if (!opts.smoke) {
        models.push_back(bertLarge());
        models.push_back(vitHuge());
    }

    for (const TransformerConfig &model : models) {
        const InferenceEstimate fp32 =
            estimateHostInference(cpu, model, HostDtype::Fp32);
        const InferenceEstimate int8 =
            estimateHostInference(cpu, model, HostDtype::Int8);
        // All PIM estimates route through the plan IR: lower the model
        // under a mode, cost the nodes, schedule sequentially.
        const Scheduler &sched =
            schedulerFor(SchedulePolicy::Sequential);
        const InferenceEstimate pim_gemm = engine.estimate(
            model, {}, ExecutionMode::PimGemm, sched, HostDtype::Int8);
        const InferenceEstimate pd_v2 =
            engine.estimate(model, v2, ExecutionMode::PimDl, sched);
        const InferenceEstimate pd_v4 =
            engine.estimate(model, v4, ExecutionMode::PimDl, sched);

        for (const Entry &e : std::vector<Entry>{
                 {"CPU FP32", fp32},
                 {"CPU INT8", int8},
                 {"PIM (GEMM offload)", pim_gemm},
                 {"PIM-DL V=2/CT=16", pd_v2},
                 {"PIM-DL V=4/CT=16", pd_v4}}) {
            table.addRow({
                model.name,
                e.config,
                TablePrinter::fmt(e.est.total_s, 2),
                TablePrinter::fmt(e.est.total_s /
                                      static_cast<double>(model.layers),
                                  2),
                TablePrinter::fmtRatio(fp32.total_s / e.est.total_s),
            });
        }

        sp_v2_fp32.push_back(fp32.total_s / pd_v2.total_s);
        sp_v2_int8.push_back(int8.total_s / pd_v2.total_s);
        sp_v4_fp32.push_back(fp32.total_s / pd_v4.total_s);
        sp_v4_int8.push_back(int8.total_s / pd_v4.total_s);
        sp_v2_pim.push_back(pim_gemm.total_s / pd_v2.total_s);
        sp_v4_pim.push_back(pim_gemm.total_s / pd_v4.total_s);

        en_v2_fp32.push_back(fp32.energy.total() / pd_v2.energy.total());
        en_v4_fp32.push_back(fp32.energy.total() / pd_v4.energy.total());
        en_v2_int8.push_back(int8.energy.total() / pd_v2.energy.total());
        en_v4_int8.push_back(int8.energy.total() / pd_v4.energy.total());
        en_v2_pim.push_back(pim_gemm.energy.total() /
                            pd_v2.energy.total());
        en_v4_pim.push_back(pim_gemm.energy.total() /
                            pd_v4.energy.total());

        all_results.emplace_back(
            model, std::vector<Entry>{{"CPU FP32", fp32},
                                      {"CPU INT8", int8},
                                      {"PIM (GEMM offload)", pim_gemm},
                                      {"PIM-DL V=2", pd_v2},
                                      {"PIM-DL V=4", pd_v4}});
    }
    table.print(std::cout);

    std::cout << "\nGeomean speedups:\n"
              << "  V=2 vs CPU FP32: "
              << TablePrinter::fmtRatio(geomean(sp_v2_fp32))
              << "  (paper 2.05x)\n"
              << "  V=2 vs CPU INT8: "
              << TablePrinter::fmtRatio(geomean(sp_v2_int8))
              << "  (paper 1.14x)\n"
              << "  V=4 vs CPU FP32: "
              << TablePrinter::fmtRatio(geomean(sp_v4_fp32))
              << "  (paper 3.07x)\n"
              << "  V=4 vs CPU INT8: "
              << TablePrinter::fmtRatio(geomean(sp_v4_int8))
              << "  (paper 1.71x)\n"
              << "  V=2 vs PIM-GEMM: "
              << TablePrinter::fmtRatio(geomean(sp_v2_pim))
              << "  (paper 12.61x)\n"
              << "  V=4 vs PIM-GEMM: "
              << TablePrinter::fmtRatio(geomean(sp_v4_pim))
              << "  (paper 18.91x)\n";

    printBanner(std::cout,
                "Figure 10-(b): Energy efficiency (normalized to CPU "
                "FP32)");
    TablePrinter energy({"Model", "Config", "Energy (J)",
                         "Efficiency vs FP32"});
    for (const auto &[model, entries] : all_results) {
        const double fp32_j = entries[0].est.energy.total();
        for (const auto &e : entries) {
            energy.addRow({
                model.name,
                e.config,
                TablePrinter::fmt(e.est.energy.total(), 0),
                TablePrinter::fmtRatio(fp32_j / e.est.energy.total()),
            });
        }
    }
    energy.print(std::cout);

    std::cout << "\nGeomean energy efficiency:\n"
              << "  V=2 vs CPU FP32: "
              << TablePrinter::fmtRatio(geomean(en_v2_fp32))
              << "  (paper 2.95x)\n"
              << "  V=2 vs CPU INT8: "
              << TablePrinter::fmtRatio(geomean(en_v2_int8))
              << "  (paper 1.65x)\n"
              << "  V=4 vs CPU FP32: "
              << TablePrinter::fmtRatio(geomean(en_v4_fp32))
              << "  (paper 4.42x)\n"
              << "  V=4 vs CPU INT8: "
              << TablePrinter::fmtRatio(geomean(en_v4_int8))
              << "  (paper 2.46x)\n"
              << "  V=2 vs PIM-GEMM: "
              << TablePrinter::fmtRatio(geomean(en_v2_pim))
              << "  (paper 11.16x)\n"
              << "  V=4 vs PIM-GEMM: "
              << TablePrinter::fmtRatio(geomean(en_v4_pim))
              << "  (paper 16.74x)\n";

    // End-to-end here also means serving: a short batched-serving
    // simulation populates the serving.* latency/queue metrics so the
    // --metrics-out artifact carries the full observability schema.
    printBanner(std::cout, "Serving smoke (batched queue on BERT-base)");
    {
        ServingSimulator sim(engine, bertBase(), v4);
        ServingConfig serving;
        serving.max_batch = 32;
        // Offer ~60% of the engine's full-batch capacity so the queue
        // is stable and the latency percentiles are meaningful.
        const double capacity =
            static_cast<double>(serving.max_batch) /
            sim.batchLatency(serving.max_batch,
                             SchedulePolicy::Sequential);
        serving.arrival_rate = 0.6 * capacity;
        serving.max_wait_s = 0.25;
        serving.horizon_s = opts.smoke ? 20.0 : 60.0;
        const ServingStats stats = sim.simulate(serving);
        std::cout << "  requests=" << stats.requests
                  << " batches=" << stats.batches << " p50="
                  << TablePrinter::fmt(stats.p50_latency_s, 3) << "s p99="
                  << TablePrinter::fmt(stats.p99_latency_s, 3)
                  << "s util="
                  << TablePrinter::fmt(stats.utilization * 100.0, 1)
                  << "%\n";

        // Re-run the same workload with batch faults injected so the
        // artifact's fault.serving.* counters carry real retry and
        // availability data (see bench_fault_tolerance for the sweep).
        // The deadline budgets one retried re-execution on top of the
        // fault-free tail before a request counts as timed out.
        serving.deadline_s = 2.5 * stats.p99_latency_s;
        serving.faults.batch_fault_rate = 0.2;
        const ServingStats faulty = sim.simulate(serving);
        std::cout << "  with 20% batch faults: availability="
                  << TablePrinter::fmt(faulty.availability, 4)
                  << " retries=" << faulty.batch_retries
                  << " failed_batches=" << faulty.failed_batches
                  << " goodput="
                  << TablePrinter::fmt(faulty.goodput_rps, 1)
                  << " rps\n";
    }

    pimdl::bench::writeBenchArtifacts(opts);
    return 0;
}
