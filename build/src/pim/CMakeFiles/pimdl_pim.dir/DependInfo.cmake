
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/dpu_isa.cc" "src/pim/CMakeFiles/pimdl_pim.dir/dpu_isa.cc.o" "gcc" "src/pim/CMakeFiles/pimdl_pim.dir/dpu_isa.cc.o.d"
  "/root/repo/src/pim/dpu_kernels.cc" "src/pim/CMakeFiles/pimdl_pim.dir/dpu_kernels.cc.o" "gcc" "src/pim/CMakeFiles/pimdl_pim.dir/dpu_kernels.cc.o.d"
  "/root/repo/src/pim/platform.cc" "src/pim/CMakeFiles/pimdl_pim.dir/platform.cc.o" "gcc" "src/pim/CMakeFiles/pimdl_pim.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pimdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
