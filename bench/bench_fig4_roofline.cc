/**
 * @file
 * Figure 4 reproduction: roofline analysis of LUT kernels. The paper
 * converts the FC layers of BERT-base/large and ViT-huge to LUT-NN
 * (fused QKV, INT8 LUTs, batch 64, seq 512) and measures arithmetic
 * intensity on a dual Xeon 4210; every kernel lands deep in the
 * memory-bound region. We report the analytical ops/byte of the same
 * kernels, both as pure data volume and with the 4-byte cache-line
 * granularity the measured traffic sees, against the CPU's balance
 * point (795.11 GOPS / 60 GB/s ~ 13 ops per byte).
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "host/host_model.h"
#include "lutnn/flops.h"
#include "nn/model_config.h"

using namespace pimdl;

namespace {

/** Intensity with LUT reads charged at cache-line granularity. */
double
lineGranularIntensity(std::size_t n, std::size_t h, std::size_t f,
                      std::size_t v, std::size_t ct)
{
    const double ops = lutOps(n, h, f, v, ct).total();
    // INT8 LUT gathers pull whole 4-byte words through the hierarchy.
    const double bytes = lutBytesMoved(n, h, f, v, ct, false);
    return ops / bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    const pimdl::bench::BenchOptions opts =
        pimdl::bench::parseBenchArgs(argc, argv);
    printBanner(std::cout, "Figure 4: Roofline Analysis of LUT Kernels");

    const HostProcessorConfig cpu = xeon4210Dual();
    const double balance = cpu.peak_fp32_ops / cpu.mem_bw;
    std::cout << "CPU peak " << cpu.peak_fp32_ops / 1e9
              << " GOPS, stream bandwidth " << cpu.mem_bw / 1e9
              << " GB/s -> balance point " << balance << " ops/byte\n\n";

    constexpr std::size_t kV = 2;
    constexpr std::size_t kCt = 16;

    TablePrinter table({"Model", "Kernel", "N", "H", "F", "AI (data)",
                        "AI (line-granular)", "Region"});
    for (const TransformerConfig &model :
         {bertBase(), bertLarge(), vitHuge()}) {
        for (const LinearWorkload &w : model.linearWorkloads()) {
            const double ai_data =
                lutArithmeticIntensity(w.n, w.h, w.f, kV, kCt, true);
            const double ai_line =
                lineGranularIntensity(w.n, w.h, w.f, kV, kCt);
            table.addRow({
                model.name,
                linearRoleName(w.role),
                std::to_string(w.n),
                std::to_string(w.h),
                std::to_string(w.f),
                TablePrinter::fmt(ai_data, 3),
                TablePrinter::fmt(ai_line, 3),
                ai_line < balance ? "memory-bound" : "compute-bound",
            });
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper reference: all kernels land at 0.204-0.288 "
                 "ops/byte, inside the memory-bound region.\n";
    pimdl::bench::writeBenchArtifacts(opts);
    return 0;
}
