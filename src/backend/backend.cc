#include "backend.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "backend/analytical.h"
#include "backend/transaction.h"
#include "obs/metrics.h"

namespace pimdl {

const char *
timingBackendKindName(TimingBackendKind kind)
{
    switch (kind) {
    case TimingBackendKind::Analytical:
        return "analytical";
    case TimingBackendKind::Transaction:
        return "transaction";
    }
    return "?";
}

bool
parseTimingBackendKind(const std::string &name, TimingBackendKind *out)
{
    if (name == "analytical") {
        *out = TimingBackendKind::Analytical;
        return true;
    }
    if (name == "transaction" || name == "txn") {
        *out = TimingBackendKind::Transaction;
        return true;
    }
    return false;
}

TimingBackendKind
defaultTimingBackendKind()
{
    const char *env = std::getenv("PIMDL_BACKEND");
    if (env == nullptr || env[0] == '\0')
        return TimingBackendKind::Analytical;
    TimingBackendKind kind = TimingBackendKind::Analytical;
    if (!parseTimingBackendKind(env, &kind))
        throw std::runtime_error(
            "PIMDL_BACKEND=\"" + std::string(env) +
            "\" is not a timing backend (expected "
            "\"analytical\" or \"transaction\")");
    return kind;
}

void
TransactionSimConfig::validate() const
{
    if (host_traffic_intensity < 0.0 || host_traffic_intensity > 0.85)
        throw std::runtime_error(
            "TransactionSimConfig.host_traffic_intensity must be in "
            "[0, 0.85] (beyond that the PIM share of a quantum vanishes)");
    if (arbitration_quantum_s <= 0.0)
        throw std::runtime_error(
            "TransactionSimConfig.arbitration_quantum_s must be > 0");
    if (mode_switch_s < 0.0)
        throw std::runtime_error(
            "TransactionSimConfig.mode_switch_s must be >= 0");
    if (refresh_interval_s <= 0.0)
        throw std::runtime_error(
            "TransactionSimConfig.refresh_interval_s must be > 0");
    if (refresh_latency_s < 0.0)
        throw std::runtime_error(
            "TransactionSimConfig.refresh_latency_s must be >= 0");
    if (cmd_issue_overhead_s < 0.0)
        throw std::runtime_error(
            "TransactionSimConfig.cmd_issue_overhead_s must be >= 0");
    if (max_sim_banks == 0)
        throw std::runtime_error(
            "TransactionSimConfig.max_sim_banks must be >= 1");
    if (max_cmds_per_component == 0)
        throw std::runtime_error(
            "TransactionSimConfig.max_cmds_per_component must be >= 1");
}

CostedPlan
TimingBackend::cost(const Plan &plan) const
{
    CostedPlan costed;
    costed.plan = plan;
    costed.costs.reserve(plan.nodes.size());
    for (const PlanNode &node : plan.nodes)
        costed.costs.push_back(costNode(plan, node));
    return costed;
}

std::unique_ptr<TimingBackend>
makeTimingBackend(TimingBackendKind kind, PimPlatformConfig platform,
                  HostProcessorConfig host,
                  const TransactionSimConfig &txn_config)
{
    obs::MetricsRegistry::instance().gauge("backend.impl").set(
        kind == TimingBackendKind::Transaction ? 1.0 : 0.0);
    if (kind == TimingBackendKind::Transaction)
        return std::make_unique<TransactionBackend>(
            std::move(platform), std::move(host), txn_config);
    return std::make_unique<AnalyticalBackend>(std::move(platform),
                                               std::move(host));
}

} // namespace pimdl
