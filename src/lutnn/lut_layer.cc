#include "lut_layer.h"

#include "common/parallel.h"
#include "kernels/kernels.h"

namespace pimdl {

namespace {

/**
 * Rows per parallel block for the CCS / lookup loops: large enough to
 * amortize the per-block dispatch, small enough to load-balance.
 */
constexpr std::size_t kRowGrain = 16;

} // namespace

LutLayer
LutLayer::convert(const Tensor &w, CodebookSet codebooks,
                  std::vector<float> bias)
{
    LutLayer layer;
    layer.shape_.input_dim = w.rows();
    layer.shape_.output_dim = w.cols();
    layer.shape_.subvec_len = codebooks.subvecLen();
    layer.shape_.centroids = codebooks.centroids();
    layer.shape_.validate();
    PIMDL_REQUIRE(codebooks.codebooks() == layer.shape_.codebooks(),
                  "codebook count must equal H / V");
    if (!bias.empty()) {
        PIMDL_REQUIRE(bias.size() == w.cols(), "bias length mismatch");
    }

    layer.codebooks_ = std::move(codebooks);
    layer.weight_ = w;
    layer.bias_ = std::move(bias);
    layer.rebuildTables();
    return layer;
}

void
LutLayer::rebuildTables()
{
    const std::size_t cb_count = shape_.codebooks();
    const std::size_t ct_count = shape_.centroids;
    const std::size_t f_count = shape_.output_dim;
    const std::size_t v_len = shape_.subvec_len;

    lut_.assign(cb_count * ct_count * f_count, 0.0f);

    // lut[cb][ct][f] = centroid(cb, ct) . W[cb*V:(cb+1)*V, f]
    parallelFor(cb_count, [&](std::size_t cb) {
        for (std::size_t ct = 0; ct < ct_count; ++ct) {
            const float *c = codebooks_.centroid(cb, ct);
            float *dst = lut_.data() + (cb * ct_count + ct) * f_count;
            for (std::size_t v = 0; v < v_len; ++v) {
                const float cv = c[v];
                const float *wrow = weight_.rowPtr(cb * v_len + v);
                for (std::size_t f = 0; f < f_count; ++f)
                    dst[f] += cv * wrow[f];
            }
        }
    });

    if (quant_lut_.has_value()) {
        quant_lut_.reset();
        quantizeTables();
    }
}

void
LutLayer::quantizeTables()
{
    if (quant_lut_.has_value())
        return;
    Tensor flat(shape_.codebooks() * shape_.centroids, shape_.output_dim,
                lut_);
    quant_lut_ = quantizeSymmetric(flat);
}

IndexMatrix
LutLayer::closestCentroidSearch(const Tensor &input) const
{
    PIMDL_REQUIRE(input.cols() == shape_.input_dim,
                  "input width mismatch in CCS");
    const std::size_t cb_count = shape_.codebooks();
    const std::size_t v_len = shape_.subvec_len;

    IndexMatrix indices(input.rows(), cb_count);
    const kernels::KernelTable &kt = kernels::best();
    kernels::recordCcsWork(input.rows(), cb_count, shape_.centroids,
                           v_len);
    parallelForBlocked(
        input.rows(), kRowGrain, [&](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
                const float *row = input.rowPtr(r);
                std::uint16_t *dst = &indices.at(r, 0);
                for (std::size_t cb = 0; cb < cb_count; ++cb) {
                    dst[cb] = static_cast<std::uint16_t>(kt.ccs_argmin(
                        row + cb * v_len, codebooks_.centroid(cb, 0),
                        codebooks_.normsPtr(cb), shape_.centroids,
                        v_len));
                }
            }
        });
    return indices;
}

Tensor
LutLayer::lookup(const IndexMatrix &indices) const
{
    PIMDL_REQUIRE(indices.cols == shape_.codebooks(),
                  "index width mismatch in lookup");
    const std::size_t f_count = shape_.output_dim;
    const std::size_t ct_count = shape_.centroids;

    Tensor out(indices.rows, f_count);
    const kernels::KernelTable &kt = kernels::best();
    kernels::recordLutWork(indices.rows, indices.cols, f_count,
                           sizeof(float));
    parallelForBlocked(
        indices.rows, kRowGrain, [&](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
                kt.lut_accum_f32(indices.data.data() + r * indices.cols,
                                 indices.cols, ct_count, lut_.data(),
                                 f_count, 0, f_count, out.rowPtr(r));
            }
        });
    addBiasRows(out);
    return out;
}

Tensor
LutLayer::lookupQuantized(const IndexMatrix &indices) const
{
    PIMDL_REQUIRE(quant_lut_.has_value(),
                  "quantizeTables() must run before lookupQuantized");
    PIMDL_REQUIRE(indices.cols == shape_.codebooks(),
                  "index width mismatch in lookup");
    const std::size_t f_count = shape_.output_dim;
    const std::size_t ct_count = shape_.centroids;
    const QuantizedTensor &qlut = *quant_lut_;

    Tensor out(indices.rows, f_count);
    const kernels::KernelTable &kt = kernels::best();
    kernels::recordLutWork(indices.rows, indices.cols, f_count,
                           sizeof(std::int8_t));
    parallelForBlocked(
        indices.rows, kRowGrain, [&](std::size_t begin, std::size_t end) {
            // One accumulator per block, zero-filled by the kernel on
            // every row.
            std::vector<std::int32_t> acc(f_count);
            for (std::size_t r = begin; r < end; ++r) {
                kt.lut_accum_i8(indices.data.data() + r * indices.cols,
                                indices.cols, ct_count, qlut.data.data(),
                                f_count, 0, f_count, acc.data());
                float *dst = out.rowPtr(r);
                for (std::size_t f = 0; f < f_count; ++f)
                    dst[f] = static_cast<float>(acc[f]) * qlut.scale;
            }
        });
    addBiasRows(out);
    return out;
}

Tensor
LutLayer::forward(const Tensor &input) const
{
    return lookup(closestCentroidSearch(input));
}

Tensor
LutLayer::forwardQuantized(const Tensor &input) const
{
    return lookupQuantized(closestCentroidSearch(input));
}

Tensor
LutLayer::approximateActivations(const Tensor &input) const
{
    PIMDL_REQUIRE(input.cols() == shape_.input_dim,
                  "input width mismatch in approximateActivations");
    const std::size_t cb_count = shape_.codebooks();
    const std::size_t v_len = shape_.subvec_len;

    Tensor out(input.rows(), input.cols());
    parallelFor(input.rows(), [&](std::size_t r) {
        const float *src = input.rowPtr(r);
        float *dst = out.rowPtr(r);
        for (std::size_t cb = 0; cb < cb_count; ++cb) {
            const std::size_t ct = codebooks_.nearest(cb, src + cb * v_len);
            const float *c = codebooks_.centroid(cb, ct);
            for (std::size_t v = 0; v < v_len; ++v)
                dst[cb * v_len + v] = c[v];
        }
    });
    return out;
}

void
LutLayer::addBiasRows(Tensor &out) const
{
    if (bias_.empty())
        return;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        float *dst = out.rowPtr(r);
        for (std::size_t f = 0; f < out.cols(); ++f)
            dst[f] += bias_[f];
    }
}

} // namespace pimdl
