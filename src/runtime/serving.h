/**
 * @file
 * Discrete-event batched-serving simulator.
 *
 * The paper motivates PIM-DL with cloud serving scenarios that "require
 * batched inference" (Section 2.2). This module closes the loop: Poisson
 * request arrivals feed a batching queue in front of one PIM-DL engine;
 * batches dispatch when full or when the oldest request has waited past
 * a deadline, and per-batch latency comes from the engine's estimate.
 * Outputs are the serving metrics an operator cares about: throughput,
 * latency percentiles, mean batch size, and device utilization.
 *
 * The simulator also carries failure semantics: a per-batch fault
 * profile (seed-deterministic, sharing src/fault's counter-based hash)
 * can fail dispatch attempts, which are retried with capped exponential
 * backoff on a degraded (remapped) engine; exhausted retries fail the
 * batch, per-request deadlines convert late completions into timeouts,
 * and the stats report availability and degraded goodput alongside the
 * fault-free metrics.
 */

#ifndef PIMDL_RUNTIME_SERVING_H
#define PIMDL_RUNTIME_SERVING_H

#include <functional>
#include <map>
#include <vector>

#include "common/thread_annotations.h"
#include "fault/fault.h"
#include "runtime/engine.h"

namespace pimdl {

/**
 * Per-batch fault semantics of the serving loop. Batch outcomes are
 * drawn by a counter-based hash of (seed, batch index, attempt), so a
 * sweep over batch_fault_rate sees coupled draws: raising the rate can
 * only add faults, which keeps availability/retry curves monotonic.
 */
struct ServingFaultProfile
{
    /** Per dispatch-attempt probability the batch execution fails. */
    double batch_fault_rate = 0.0;
    /**
     * Service-time multiplier for retry attempts: the re-execution runs
     * on the degraded engine (tiles remapped around the fault).
     */
    double degraded_service_factor = 1.5;
    /** Retries allowed per batch after the initial attempt. */
    std::size_t max_retries = 3;
    /** Backoff before the first retry, seconds. */
    double backoff_base_s = 2e-3;
    /** Backoff ceiling, seconds. */
    double backoff_cap_s = 64e-3;
    /** Root of the per-batch outcome draws. */
    std::uint64_t seed = 0xfa0175ULL;

    bool enabled() const { return batch_fault_rate > 0.0; }

    /** Backoff before retry number @p retry (0-based), seconds. */
    double backoffFor(std::size_t retry) const
    {
        return cappedBackoff(backoff_base_s, backoff_cap_s, retry);
    }

    /** Throws std::runtime_error on nonsensical parameters. */
    void validate() const;
};

/** Workload and policy of one serving simulation. */
struct ServingConfig
{
    /** Mean request arrival rate, requests/second (Poisson process). */
    double arrival_rate = 10.0;
    /** Largest batch the engine accepts. */
    std::size_t max_batch = 64;
    /** Dispatch a partial batch once its oldest request waited this long. */
    double max_wait_s = 0.5;
    /** Simulated wall-clock span, seconds. */
    double horizon_s = 300.0;
    /** Scheduler the engine estimates batches with (plan/schedule.h). */
    SchedulePolicy policy = SchedulePolicy::Sequential;
    /**
     * Pad dispatched batches up to the next power of two (bounded by
     * max_batch): standard bucketing that bounds the number of distinct
     * kernel shapes the auto-tuner must plan for.
     */
    bool pow2_buckets = true;
    std::uint64_t seed = 1;
    /**
     * Per-request completion deadline, seconds; requests served later
     * count as timeouts against availability. 0 disables the deadline.
     */
    double deadline_s = 0.0;
    /** Per-batch fault semantics (disabled by default). */
    ServingFaultProfile faults;

    /** Throws std::runtime_error with a field-naming message when bad. */
    void validate() const;
};

/** Aggregate metrics of a simulation run. */
struct ServingStats
{
    std::size_t requests = 0;
    std::size_t batches = 0;
    double mean_batch_size = 0.0;
    /** Completed requests per second of simulated time. */
    double throughput_rps = 0.0;
    /** Request latency (queueing + service), seconds. */
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
    /** Fraction of the horizon the engine spent serving. */
    double utilization = 0.0;

    // Failure accounting (all zero when the fault profile is disabled).
    /** Requests whose batch eventually executed. */
    std::size_t completed = 0;
    /** Requests lost to batches that exhausted their retries. */
    std::size_t failed_requests = 0;
    /** Requests served after the deadline_s budget. */
    std::size_t timed_out = 0;
    /** Dispatch attempts that were retried after a batch fault. */
    std::size_t batch_retries = 0;
    /** Batches that exhausted retries and were dropped. */
    std::size_t failed_batches = 0;
    /** Batches that completed but needed at least one retry. */
    std::size_t degraded_batches = 0;
    /** Requests served within deadline / total requests. */
    double availability = 1.0;
    /** Deadline-meeting completions per second (degraded throughput). */
    double goodput_rps = 0.0;
};

/** Latency model consulted per dispatched batch, seconds. */
using BatchLatencyFn = std::function<double(std::size_t batch)>;

/**
 * Poisson arrival times over [0, horizon_s), sorted ascending. This is
 * the exact stream ServingSimulator::simulate draws, exposed so the
 * live serving driver can replay the identical open-loop trace through
 * the real runtime and through the analytical model.
 */
std::vector<double> poissonArrivals(double arrival_rate, double horizon_s,
                                    std::uint64_t seed);

/**
 * Core discrete-event serving loop over an explicit arrival trace and
 * an injectable batch-latency model. ServingSimulator::simulate is a
 * thin wrapper (Poisson arrivals + the engine's analytical latency);
 * the live-serving cross-validation harness instead replays a measured
 * arrival trace with a measured batch-latency calibration, so the
 * queueing/batching/shedding model itself is what gets validated.
 * @p arrivals must be sorted ascending.
 */
ServingStats simulateServingTrace(const ServingConfig &config,
                                  const std::vector<double> &arrivals,
                                  const BatchLatencyFn &latency);

/**
 * Simulates batched serving of @p model (its batch field is overridden
 * per dispatched batch) on one PIM-DL engine.
 */
class ServingSimulator
{
  public:
    ServingSimulator(const PimDlEngine &engine,
                     const TransformerConfig &model,
                     const LutNnParams &params);

    /** Runs one simulation; deterministic for a fixed config. */
    ServingStats simulate(const ServingConfig &config) const;

    /**
     * Engine latency for a given batch size under a scheduling policy
     * (memoized per instance; safe to call concurrently).
     */
    double batchLatency(std::size_t batch, SchedulePolicy policy) const
        PIMDL_EXCLUDES(cache_mu_);

  private:
    const PimDlEngine &engine_;
    TransformerConfig model_;
    LutNnParams params_;
    /** Guards latency_cache_ (sweeps probe batches in parallel). */
    mutable Mutex cache_mu_{"serving.sim.latency_cache"};
    /** Memoized per (batch, policy) latency. */
    mutable std::map<std::pair<std::size_t, SchedulePolicy>, double>
        latency_cache_ PIMDL_GUARDED_BY(cache_mu_);
};

} // namespace pimdl

#endif // PIMDL_RUNTIME_SERVING_H
