#include "serving_live.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>

#include "common/logging.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace pimdl {

namespace {

/**
 * Real-time wait slice the batcher polls with when time is virtual: a
 * ManualClock deadline never expires on its own, so the batcher must
 * wake periodically and re-read the clock instead of sleeping toward
 * the deadline.
 */
constexpr double kVirtualPollSliceS = 200e-6;

std::size_t
pow2Bucket(std::size_t batch, std::size_t max_batch)
{
    std::size_t padded = 1;
    while (padded < batch)
        padded <<= 1;
    return std::min(padded, max_batch);
}

} // namespace

const char *
liveRequestStatusName(LiveRequestStatus status)
{
    switch (status) {
    case LiveRequestStatus::Completed:
        return "completed";
    case LiveRequestStatus::TimedOut:
        return "timed_out";
    case LiveRequestStatus::Shed:
        return "shed";
    case LiveRequestStatus::Failed:
        return "failed";
    }
    return "unknown";
}

Tensor
FunctionalBatchExecutor::execute(const Tensor &tokens,
                                 std::size_t seq_len, bool degraded)
{
    LinearBackendKind backend = backend_;
    if (degraded && backend == LinearBackendKind::PimLut)
        backend = LinearBackendKind::HostLut;
    return model_.forward(tokens, seq_len, backend);
}

void
LiveServingConfig::validate() const
{
    PIMDL_REQUIRE(max_batch > 0, "max_batch must be positive");
    PIMDL_REQUIRE(std::isfinite(max_wait_s) && max_wait_s >= 0.0,
                  "max_wait_s must be finite and non-negative");
    PIMDL_REQUIRE(queue_capacity > 0, "queue_capacity must be positive");
    PIMDL_REQUIRE(workers > 0, "workers must be positive");
    PIMDL_REQUIRE(std::isfinite(deadline_s) && deadline_s >= 0.0,
                  "deadline_s must be finite and non-negative (0 = off)");
    faults.validate();
}

LiveServingRuntime::LiveServingRuntime(const LiveServingConfig &config,
                                       BatchExecutor &executor,
                                       Clock *clock)
    : config_((config.validate(), config)), executor_(executor),
      clock_(clock != nullptr ? clock : &SteadyClock::instance()),
      request_queue_(config_.queue_capacity),
      work_queue_(std::max<std::size_t>(2 * config_.workers, 2))
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    m_.requests = &reg.counter("serving.live.requests");
    m_.rejected = &reg.counter("serving.live.rejected");
    m_.completed = &reg.counter("serving.live.completed");
    m_.shed = &reg.counter("serving.live.shed");
    m_.deadline_timeouts =
        &reg.counter("serving.live.deadline_timeouts");
    m_.failed_requests = &reg.counter("serving.live.failed_requests");
    m_.batches = &reg.counter("serving.live.batches");
    m_.batch_retries = &reg.counter("serving.live.batch_retries");
    m_.failed_batches = &reg.counter("serving.live.failed_batches");
    m_.queue_depth = &reg.gauge("serving.live.queue_depth");
    m_.availability = &reg.gauge("serving.live.availability");
    m_.request_latency_s =
        &reg.histogram("serving.live.request_latency_s");
    m_.queue_wait_s = &reg.histogram("serving.live.queue_wait_s");
    m_.batch_size = &reg.histogram("serving.live.batch_size");
    m_.batch_service_s =
        &reg.histogram("serving.live.batch_service_s");
    m_.batch_queue_depth =
        &reg.histogram("serving.live.batch_queue_depth");

    batcher_ = std::thread(&LiveServingRuntime::batcherLoop, this);
    workers_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i)
        workers_.emplace_back(&LiveServingRuntime::workerLoop, this);
}

LiveServingRuntime::~LiveServingRuntime()
{
    drain();
}

std::optional<std::future<LiveRequestResult>>
LiveServingRuntime::submit(Tensor input, std::uint64_t tenant)
{
    PIMDL_REQUIRE(input.rows() > 0 && input.cols() > 0,
                  "submitted request tensor must be non-empty");
    {
        MutexLock lock(stats_mu_);
        ++acc_.submitted;
        if (pinned_rows_ == 0) {
            pinned_rows_ = input.rows();
            pinned_cols_ = input.cols();
        }
        PIMDL_REQUIRE(input.rows() == pinned_rows_ &&
                          input.cols() == pinned_cols_,
                      "every request must match the first request's "
                      "(seq_len x hidden) shape");
    }
    m_.requests->add(1);

    if (draining_.load(std::memory_order_acquire)) {
        MutexLock lock(stats_mu_);
        ++acc_.rejected;
        m_.rejected->add(1);
        return std::nullopt;
    }

    auto req = std::make_unique<PendingRequest>();
    req->id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req->tenant = tenant;
    req->input = std::move(input);
    req->enqueue_s = clock_->now();
    std::future<LiveRequestResult> future = req->promise.get_future();

    if (!request_queue_.tryPush(std::move(req))) {
        MutexLock lock(stats_mu_);
        ++acc_.rejected;
        m_.rejected->add(1);
        return std::nullopt;
    }
    m_.queue_depth->set(static_cast<double>(request_queue_.size()));
    return future;
}

void
LiveServingRuntime::batcherLoop()
{
    std::unique_ptr<PendingRequest> front;
    while (request_queue_.pop(front)) {
        BatchTask task;
        task.requests.push_back(std::move(front));

        while (task.requests.size() < config_.max_batch) {
            const double waited =
                clock_->now() - task.requests.front()->enqueue_s;
            const double remaining = config_.max_wait_s - waited;
            if (remaining <= 0.0)
                break;
            std::unique_ptr<PendingRequest> next;
            const double slice =
                clock_->isVirtual() ? kVirtualPollSliceS : remaining;
            if (request_queue_.popFor(next, slice)) {
                task.requests.push_back(std::move(next));
            } else if (request_queue_.closed() &&
                       request_queue_.empty()) {
                break; // draining: flush the partial batch now
            }
            // Otherwise (timeout or spurious wake) the loop re-reads
            // the clock and re-derives the remaining wait.
        }
        m_.queue_depth->set(
            static_cast<double>(request_queue_.size()));
        dispatch(std::move(task));
    }
    // pop() returned false: the request queue is closed and drained.
    // No further batches can form, so release the workers.
    work_queue_.close();
}

void
LiveServingRuntime::dispatch(BatchTask &&task)
{
    if (config_.deadline_s > 0.0) {
        const double now = clock_->now();
        std::vector<std::unique_ptr<PendingRequest>> keep;
        keep.reserve(task.requests.size());
        for (auto &req : task.requests) {
            if (now - req->enqueue_s >= config_.deadline_s)
                fulfillShed(std::move(req), now);
            else
                keep.push_back(std::move(req));
        }
        task.requests = std::move(keep);
        if (task.requests.empty())
            return;
    }
    task.id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
    m_.batch_queue_depth->record(
        static_cast<double>(work_queue_.size()));
    // Blocking push: a full work queue is the backpressure that keeps
    // the batcher at most a few batches ahead of the workers.
    (void)work_queue_.push(std::move(task));
}

void
LiveServingRuntime::fulfillShed(std::unique_ptr<PendingRequest> req,
                                double now)
{
    LiveRequestResult result;
    result.status = LiveRequestStatus::Shed;
    result.request_id = req->id;
    result.tenant = req->tenant;
    result.enqueue_s = req->enqueue_s;
    result.done_s = now;
    result.queue_wait_s = now - req->enqueue_s;
    result.latency_s = result.queue_wait_s;
    req->promise.set_value(std::move(result));
    m_.shed->add(1);
    MutexLock lock(stats_mu_);
    ++acc_.shed;
}

void
LiveServingRuntime::workerLoop()
{
    BatchTask task;
    while (work_queue_.pop(task))
        executeBatch(std::move(task));
}

void
LiveServingRuntime::executeBatch(BatchTask task)
{
    obs::TraceSpan span("serving.live.batch");
    span.attr("batch_id", task.id);
    const std::size_t batch = task.requests.size();
    span.attr("batch_size", static_cast<std::uint64_t>(batch));
    const std::size_t seq = task.requests.front()->input.rows();
    const std::size_t hidden = task.requests.front()->input.cols();
    const std::size_t shape_batch =
        config_.pow2_buckets ? pow2Bucket(batch, config_.max_batch)
                             : batch;

    // Stack request rows; padding rows (shape bucketing) stay zero.
    Tensor tokens(shape_batch * seq, hidden);
    for (std::size_t i = 0; i < batch; ++i) {
        const Tensor &in = task.requests[i]->input;
        std::memcpy(tokens.rowPtr(i * seq), in.rowPtr(0),
                    seq * hidden * sizeof(float));
    }

    const ServingFaultProfile &faults = config_.faults;
    const double start = clock_->now();
    Tensor output;
    bool served = false;
    std::size_t retries = 0;
    for (std::size_t attempt = 0; attempt <= faults.max_retries;
         ++attempt) {
        bool faulted = false;
        try {
            output = executor_.execute(tokens, seq, attempt > 0);
        } catch (const std::exception &) {
            faulted = true;
        }
        if (!faulted && faults.enabled()) {
            // Same draw stream and keying as the analytical simulator,
            // so a fixed profile faults the same batch indices here
            // and there.
            const double u =
                faultHashUniform(faults.seed, kServingBatchFaultStream,
                                 task.id, attempt);
            faulted = u < faults.batch_fault_rate;
        }
        if (!faulted) {
            served = true;
            break;
        }
        if (attempt == faults.max_retries)
            break; // retries exhausted: the batch is lost
        ++retries;
        clock_->sleepFor(faults.backoffFor(attempt));
    }
    const double done = clock_->now();
    const double service = done - start;
    span.attr("service_s", service);
    span.attr("retries", static_cast<std::uint64_t>(retries));

    std::size_t completed = 0;
    std::size_t in_deadline = 0;
    std::size_t timed_out = 0;
    std::vector<double> batch_latencies;
    std::vector<double> batch_waits;
    batch_latencies.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        std::unique_ptr<PendingRequest> &req = task.requests[i];
        LiveRequestResult result;
        result.request_id = req->id;
        result.tenant = req->tenant;
        result.batch_id = task.id;
        result.batch_size = batch;
        result.enqueue_s = req->enqueue_s;
        result.done_s = done;
        result.queue_wait_s = start - req->enqueue_s;
        result.service_s = service;
        result.latency_s = done - req->enqueue_s;
        if (!served) {
            result.status = LiveRequestStatus::Failed;
            m_.failed_requests->add(1);
        } else {
            const bool late = config_.deadline_s > 0.0 &&
                              result.latency_s > config_.deadline_s;
            result.status = late ? LiveRequestStatus::TimedOut
                                 : LiveRequestStatus::Completed;
            ++completed;
            if (late)
                ++timed_out;
            else
                ++in_deadline;
            batch_latencies.push_back(result.latency_s);
            batch_waits.push_back(result.queue_wait_s);
            m_.request_latency_s->record(result.latency_s);
            m_.queue_wait_s->record(result.queue_wait_s);
            if (config_.collect_outputs) {
                Tensor slice(seq, hidden);
                std::memcpy(slice.rowPtr(0), output.rowPtr(i * seq),
                            seq * hidden * sizeof(float));
                result.output = std::move(slice);
            }
        }
        req->promise.set_value(std::move(result));
    }

    m_.completed->add(completed);
    m_.deadline_timeouts->add(timed_out);
    m_.batches->add(1);
    m_.batch_retries->add(retries);
    if (!served)
        m_.failed_batches->add(1);
    m_.batch_size->record(static_cast<double>(batch));
    m_.batch_service_s->record(service);

    MutexLock lock(stats_mu_);
    acc_.completed += completed;
    acc_.completed_in_deadline += in_deadline;
    acc_.timed_out += timed_out;
    if (!served)
        acc_.failed_requests += batch;
    ++acc_.batches;
    acc_.batch_retries += retries;
    if (!served)
        ++acc_.failed_batches;
    else if (retries > 0)
        ++acc_.degraded_batches;
    batch_size_sum_ += static_cast<double>(batch);
    acc_.busy_s += service;
    latencies_.insert(latencies_.end(), batch_latencies.begin(),
                      batch_latencies.end());
    queue_waits_.insert(queue_waits_.end(), batch_waits.begin(),
                        batch_waits.end());
}

void
LiveServingRuntime::drain()
{
    MutexLock lock(drain_mu_);
    if (drained_)
        return;
    drained_ = true;
    draining_.store(true, std::memory_order_release);
    request_queue_.close();
    if (batcher_.joinable())
        batcher_.join();
    // The batcher closed the work queue on exit; workers drain it.
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    m_.availability->set(stats().availability);
    m_.queue_depth->set(0.0);
}

LiveServingStats
LiveServingRuntime::statsLocked() const
{
    LiveServingStats stats = acc_;
    if (stats.batches > 0)
        stats.mean_batch_size =
            batch_size_sum_ / static_cast<double>(stats.batches);
    if (!latencies_.empty()) {
        std::vector<double> sorted = latencies_;
        std::sort(sorted.begin(), sorted.end());
        auto percentile = [&](double p) {
            const std::size_t idx = static_cast<std::size_t>(
                p * static_cast<double>(sorted.size() - 1));
            return sorted[idx];
        };
        double sum = 0.0;
        for (double l : sorted)
            sum += l;
        stats.mean_latency_s =
            sum / static_cast<double>(sorted.size());
        stats.p50_latency_s = percentile(0.50);
        stats.p95_latency_s = percentile(0.95);
        stats.p99_latency_s = percentile(0.99);
    }
    if (!queue_waits_.empty()) {
        double sum = 0.0;
        for (double w : queue_waits_)
            sum += w;
        stats.mean_queue_wait_s =
            sum / static_cast<double>(queue_waits_.size());
    }
    const std::size_t admitted = stats.submitted - stats.rejected;
    if (admitted > 0)
        stats.availability =
            static_cast<double>(stats.completed_in_deadline) /
            static_cast<double>(admitted);
    return stats;
}

LiveServingStats
LiveServingRuntime::stats() const
{
    MutexLock lock(stats_mu_);
    return statsLocked();
}

std::size_t
LiveServingRuntime::queueDepth() const
{
    return request_queue_.size();
}

} // namespace pimdl
