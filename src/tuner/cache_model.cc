#include "cache_model.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/rng.h"

namespace pimdl {

IndexSkewStats
measureIndexSkew(const IndexMatrix &indices, std::size_t ct)
{
    PIMDL_REQUIRE(ct > 0 && indices.rows > 0 && indices.cols > 0,
                  "empty index stream");
    IndexSkewStats stats;
    stats.centroids = ct;
    stats.coverage.assign(ct + 1, 0.0);

    double entropy_sum = 0.0;
    double top1_sum = 0.0;
    std::vector<double> counts(ct);
    for (std::size_t cb = 0; cb < indices.cols; ++cb) {
        std::fill(counts.begin(), counts.end(), 0.0);
        for (std::size_t r = 0; r < indices.rows; ++r) {
            const std::size_t idx = indices.at(r, cb);
            PIMDL_REQUIRE(idx < ct, "index exceeds centroid count");
            counts[idx] += 1.0;
        }
        std::sort(counts.begin(), counts.end(), std::greater<>());
        const double total = static_cast<double>(indices.rows);
        double entropy = 0.0;
        double running = 0.0;
        for (std::size_t k = 0; k < ct; ++k) {
            const double p = counts[k] / total;
            if (p > 0.0)
                entropy -= p * std::log2(p);
            running += p;
            stats.coverage[k + 1] += running;
        }
        entropy_sum += entropy;
        top1_sum += counts[0] / total;
    }

    const double cbs = static_cast<double>(indices.cols);
    stats.entropy_bits = entropy_sum / cbs;
    stats.top1_coverage = top1_sum / cbs;
    for (auto &c : stats.coverage)
        c /= cbs;
    return stats;
}

CachedLutEstimate
estimateCachedLut(const PimPlatformConfig &platform,
                  const LutWorkloadShape &shape, const LutMapping &mapping,
                  const IndexSkewStats &skew, double cache_bytes)
{
    CachedLutEstimate est;
    const LutCostBreakdown base =
        evaluateLutMapping(platform, shape, mapping);
    PIMDL_REQUIRE(base.legal, "cache model needs a legal mapping");
    est.t_ld_lut_base = base.t_ld_lut;
    est.total_base = base.total();

    if (mapping.scheme == LutLoadScheme::Static) {
        // The whole tile is already on-chip; nothing to cache.
        est.t_ld_lut_cached = base.t_ld_lut;
        est.total_cached = base.total();
        return est;
    }

    // A cached row spans the mapped feature tile of this PE.
    const double row_bytes =
        static_cast<double>(mapping.fs_tile) * platform.lut_dtype_bytes;
    const double rows_total =
        cache_bytes / std::max(1.0, row_bytes);
    est.cached_rows_per_codebook = static_cast<std::size_t>(
        rows_total / std::max<std::size_t>(1, shape.cb));

    const std::size_t k = std::min(
        est.cached_rows_per_codebook,
        skew.coverage.empty() ? 0 : skew.coverage.size() - 1);
    est.hit_rate = k > 0 ? skew.coverage[k] : 0.0;

    est.t_ld_lut_cached = base.t_ld_lut * (1.0 - est.hit_rate);
    est.total_cached = base.total() - base.t_ld_lut + est.t_ld_lut_cached;
    return est;
}

IndexMatrix
makeZipfIndexStream(std::size_t rows, std::size_t cb, std::size_t ct,
                    double alpha, std::uint64_t seed)
{
    PIMDL_REQUIRE(ct > 0, "need at least one centroid");
    Rng rng(seed);

    // Per-codebook random permutation so the hot centroid differs per
    // column, with a shared Zipf(alpha) rank distribution.
    std::vector<double> cdf(ct);
    double total = 0.0;
    for (std::size_t k = 0; k < ct; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
        cdf[k] = total;
    }
    for (auto &c : cdf)
        c /= total;

    std::vector<std::vector<std::uint16_t>> perms(cb);
    for (std::size_t c = 0; c < cb; ++c) {
        perms[c].resize(ct);
        for (std::size_t k = 0; k < ct; ++k)
            perms[c][k] = static_cast<std::uint16_t>(k);
        std::shuffle(perms[c].begin(), perms[c].end(), rng.engine());
    }

    IndexMatrix indices(rows, cb);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cb; ++c) {
            const double u = rng.uniform();
            const std::size_t rank = static_cast<std::size_t>(
                std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
            indices.at(r, c) = perms[c][std::min(rank, ct - 1)];
        }
    }
    return indices;
}

} // namespace pimdl
