/** @file Hot-entry LUT cache model and index-skew tests (Section 7). */

#include <gtest/gtest.h>

#include "tuner/autotuner.h"
#include "runtime/engine.h"
#include "tuner/cache_model.h"

namespace pimdl {
namespace {

LutWorkloadShape
shape()
{
    LutWorkloadShape s;
    s.n = 1024;
    s.cb = 64;
    s.ct = 16;
    s.f = 512;
    return s;
}

TEST(IndexSkew, UniformStreamHasFullEntropy)
{
    const IndexMatrix stream = makeZipfIndexStream(4096, 8, 16, 0.0, 1);
    const IndexSkewStats stats = measureIndexSkew(stream, 16);
    EXPECT_GT(stats.entropy_bits, 3.9); // log2(16) = 4
    EXPECT_LT(stats.top1_coverage, 0.12);
    EXPECT_NEAR(stats.coverage[16], 1.0, 1e-9);
}

TEST(IndexSkew, ZipfStreamIsSkewed)
{
    const IndexMatrix stream = makeZipfIndexStream(4096, 8, 16, 1.5, 2);
    const IndexSkewStats stats = measureIndexSkew(stream, 16);
    EXPECT_LT(stats.entropy_bits, 3.0);
    EXPECT_GT(stats.top1_coverage, 0.4);
}

TEST(IndexSkew, CoverageIsMonotone)
{
    const IndexMatrix stream = makeZipfIndexStream(1024, 4, 16, 1.0, 3);
    const IndexSkewStats stats = measureIndexSkew(stream, 16);
    for (std::size_t k = 1; k < stats.coverage.size(); ++k)
        EXPECT_GE(stats.coverage[k], stats.coverage[k - 1]);
}

TEST(IndexSkew, RejectsOutOfRangeIndices)
{
    IndexMatrix bad(2, 2);
    bad.at(1, 1) = 40;
    EXPECT_THROW(measureIndexSkew(bad, 16), std::runtime_error);
}

TEST(CacheModel, SkewedStreamsGainMore)
{
    const PimPlatformConfig platform = upmemPlatform();
    AutoTuneOptions options;
    options.fix_scheme = true;
    options.scheme = LutLoadScheme::FineGrain;
    AutoTuner tuner(platform, options);
    const AutoTuneResult tuned = tuner.tune(shape());
    ASSERT_TRUE(tuned.found);

    double prev_speedup = 0.0;
    for (double alpha : {0.0, 1.0, 2.0}) {
        const IndexMatrix stream =
            makeZipfIndexStream(1024, shape().cb, shape().ct, alpha, 7);
        const IndexSkewStats skew = measureIndexSkew(stream, shape().ct);
        const CachedLutEstimate est = estimateCachedLut(
            platform, shape(), tuned.mapping, skew, 8.0 * 1024);
        EXPECT_GE(est.speedup(), prev_speedup - 1e-9)
            << "alpha=" << alpha;
        EXPECT_GE(est.speedup(), 1.0 - 1e-9);
        prev_speedup = est.speedup();
    }
    EXPECT_GT(prev_speedup, 1.0);
}

TEST(CacheModel, StaticSchemeGainsNothing)
{
    const PimPlatformConfig platform = upmemPlatform();
    LutMapping m;
    m.ns_tile = 512;  // 2 groups
    m.fs_tile = 16;   // 32 lanes
    m.nm_tile = 64;
    m.fm_tile = 16;
    m.cbm_tile = 16;
    m.scheme = LutLoadScheme::Static;
    const IndexMatrix stream =
        makeZipfIndexStream(1024, shape().cb, shape().ct, 2.0, 9);
    const IndexSkewStats skew = measureIndexSkew(stream, shape().ct);
    const CachedLutEstimate est =
        estimateCachedLut(platform, shape(), m, skew, 8.0 * 1024);
    EXPECT_DOUBLE_EQ(est.speedup(), 1.0);
}

TEST(CacheModel, ZeroCacheIsNeutral)
{
    const PimPlatformConfig platform = upmemPlatform();
    AutoTuneOptions options;
    options.fix_scheme = true;
    options.scheme = LutLoadScheme::FineGrain;
    AutoTuner tuner(platform, options);
    const AutoTuneResult tuned = tuner.tune(shape());
    ASSERT_TRUE(tuned.found);
    const IndexMatrix stream =
        makeZipfIndexStream(1024, shape().cb, shape().ct, 2.0, 11);
    const IndexSkewStats skew = measureIndexSkew(stream, shape().ct);
    const CachedLutEstimate est =
        estimateCachedLut(platform, shape(), tuned.mapping, skew, 0.0);
    EXPECT_DOUBLE_EQ(est.hit_rate, 0.0);
    EXPECT_DOUBLE_EQ(est.speedup(), 1.0);
}

TEST(AdderOnly, FourXAccumulateThroughput)
{
    const PimPlatformConfig stock = upmemPlatform();
    const PimPlatformConfig adder = upmemAdderOnlyPlatform();
    EXPECT_NEAR(adder.pe_add_ops_per_s / stock.pe_add_ops_per_s, 4.0,
                1e-9);
    EXPECT_LT(adder.pe_mul_ops_per_s, stock.pe_mul_ops_per_s);
}

TEST(AdderOnly, SpeedsUpLutOperator)
{
    AutoTuner stock(upmemPlatform());
    AutoTuner adder(upmemAdderOnlyPlatform());
    const double t_stock = stock.tune(shape()).cost.total();
    const double t_adder = adder.tune(shape()).cost.total();
    EXPECT_LT(t_adder, t_stock);
}

TEST(Pipelining, NeverSlower)
{
    PimDlEngine engine(upmemPlatform(), xeon4210Dual());
    const TransformerConfig model =
        customTransformer("pipe-test", 256, 2, 128, 16);
    const LutNnParams params{4, 16};
    const InferenceEstimate seq = engine.estimatePimDl(model, params);
    const InferenceEstimate pipe =
        engine.estimatePimDlPipelined(model, params);
    EXPECT_LE(pipe.total_s, seq.total_s + 1e-12);
    // The overlapped window cannot beat the longer of the two stages.
    EXPECT_GE(pipe.total_s,
              std::max(seq.ccs_s, seq.lut_s) - 1e-12);
}

} // namespace
} // namespace pimdl
