#include "quant.h"

#include <cmath>

namespace pimdl {

QuantizedTensor
quantizeSymmetric(const Tensor &t)
{
    QuantizedTensor q;
    q.rows = t.rows();
    q.cols = t.cols();
    q.data.resize(t.size());

    float max_abs = 0.0f;
    for (std::size_t i = 0; i < t.size(); ++i)
        max_abs = std::max(max_abs, std::fabs(t.data()[i]));
    q.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;

    const float inv_scale = 1.0f / q.scale;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const float scaled = t.data()[i] * inv_scale;
        const float clamped = std::max(-127.0f, std::min(127.0f, scaled));
        q.data[i] = static_cast<std::int8_t>(std::lround(clamped));
    }
    return q;
}

Tensor
dequantize(const QuantizedTensor &q)
{
    Tensor out(q.rows, q.cols);
    for (std::size_t i = 0; i < q.data.size(); ++i)
        out.data()[i] = static_cast<float>(q.data[i]) * q.scale;
    return out;
}

float
quantStepBound(const QuantizedTensor &q)
{
    return 0.5f * q.scale;
}

} // namespace pimdl
