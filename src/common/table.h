/**
 * @file
 * Fixed-width console table emitter used by the benchmark harnesses to
 * print paper-style result rows (one table/figure per bench binary).
 */

#ifndef PIMDL_COMMON_TABLE_H
#define PIMDL_COMMON_TABLE_H

#include <string>
#include <vector>

namespace pimdl {

/**
 * Accumulates rows of string cells and renders them with aligned columns.
 *
 * Usage:
 * @code
 *   TablePrinter table({"Model", "Speedup"});
 *   table.addRow({"BERT-base", "2.05x"});
 *   table.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** Creates a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Appends one row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Renders the table to @p out with a separator under the header. */
    void print(std::ostream &out) const;

    /** Formats a double with @p precision fractional digits. */
    static std::string fmt(double value, int precision = 2);

    /** Formats a ratio as e.g. "2.05x". */
    static std::string fmtRatio(double value, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Prints a section banner (used to label figures/tables in bench output). */
void printBanner(std::ostream &out, const std::string &title);

} // namespace pimdl

#endif // PIMDL_COMMON_TABLE_H
