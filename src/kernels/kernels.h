/**
 * @file
 * Vectorized micro-kernels behind the hot functional paths (closest-
 * centroid search, LUT gather-accumulate, GEMM inner axpy) with a
 * runtime CPU-feature dispatch table.
 *
 * Every implementation is bit-exact against the scalar reference: the
 * per-output-element floating-point accumulation order is part of the
 * kernel contract (codebook order for the LUT reduce, sub-vector
 * element order for the CCS dot product, ascending column order for
 * axpy), so SIMD variants vectorize only across independent output
 * elements — or restructure reductions so each lane reproduces the
 * scalar sequence exactly. That is what lets the degraded-mode /
 * host-fallback ladder in the LUT executor and the pinned plan goldens
 * stay bit-identical no matter which ISA executed a tile.
 *
 * Dispatch resolution order (mirroring the PIMDL_VERIFY_PLANS
 * pattern): a process-wide runtime override (`setKernelImpl`), else
 * the `PIMDL_KERNEL_IMPL` environment variable ("scalar", "generic",
 * "avx2"), else the fastest implementation compiled in AND supported
 * by the running CPU. Selection publishes the `kernels.impl` gauge;
 * call-site helpers publish per-kernel bytes/elements counters.
 */

#ifndef PIMDL_KERNELS_KERNELS_H
#define PIMDL_KERNELS_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pimdl {
namespace kernels {

/**
 * Closest-centroid search over one codebook: returns
 * argmin_ct (norms2[ct] - 2 * dot(v, centroids[ct])) scanning
 * centroids in ascending order with strict less-than (first minimum
 * wins). `centroids` is row-major ct_count x v_len; `norms2` holds the
 * cached squared centroid norms.
 */
using CcsArgminFn = std::size_t (*)(const float *v, const float *centroids,
                                    const float *norms2,
                                    std::size_t ct_count,
                                    std::size_t v_len);

/**
 * FP32 LUT gather-accumulate for one output row: zero-fills
 * dst[0, f_count) then, for each codebook cb in ascending order, adds
 * lut[(cb * ct_count + idx_row[cb]) * f_dim + col0 + j] to dst[j].
 * `f_dim` is the full LUT row width; [col0, col0 + f_count) selects
 * the tile columns this call reduces.
 */
using LutAccumF32Fn = void (*)(const std::uint16_t *idx_row,
                               std::size_t cb_count, std::size_t ct_count,
                               const float *lut, std::size_t f_dim,
                               std::size_t col0, std::size_t f_count,
                               float *dst);

/**
 * INT8 LUT gather-accumulate: same traversal as LutAccumF32Fn but
 * accumulating sign-extended INT8 entries into INT32 accumulators
 * (zero-filled first). The caller applies the dequantization scale.
 */
using LutAccumI8Fn = void (*)(const std::uint16_t *idx_row,
                              std::size_t cb_count, std::size_t ct_count,
                              const std::int8_t *lut, std::size_t f_dim,
                              std::size_t col0, std::size_t f_count,
                              std::int32_t *acc);

/** y[j] += a * x[j] for j in [0, n): the GEMM inner kernel. */
using AxpyF32Fn = void (*)(float a, const float *x, float *y,
                           std::size_t n);

/** One ISA implementation of the micro-kernel set. */
struct KernelTable
{
    /** Stable implementation name ("scalar", "generic", "avx2"). */
    const char *name;
    /** Priority for auto-selection (higher wins when supported). */
    int priority;
    CcsArgminFn ccs_argmin;
    LutAccumF32Fn lut_accum_f32;
    LutAccumI8Fn lut_accum_i8;
    AxpyF32Fn axpy_f32;
};

/** The bit-exactness oracle; always available. */
const KernelTable &scalarKernels();

/**
 * Portable compiler-vector implementation (GCC/Clang vector
 * extensions): lowers to SSE on baseline x86-64 and NEON on AArch64
 * without ISA-specific flags. Always available.
 */
const KernelTable &genericKernels();

/**
 * AVX2 implementation, or nullptr when the TU was not compiled in
 * (non-x86 target or compiler without -mavx2) or the running CPU
 * lacks AVX2 support.
 */
const KernelTable *avx2Kernels();

/**
 * Every implementation compiled in AND supported by this CPU, ordered
 * by ascending priority (scalar first).
 */
std::vector<const KernelTable *> availableKernels();

/**
 * Looks an implementation up by name; nullptr for unknown names and
 * for implementations unavailable on this machine.
 */
const KernelTable *kernelsByName(const std::string &name);

/**
 * The dispatch table hot paths call through. Resolution: runtime
 * override from setKernelImpl, else PIMDL_KERNEL_IMPL (unknown or
 * unavailable names fall back to auto with a warning), else the
 * highest-priority available implementation. Publishes the
 * `kernels.impl` gauge on every selection change. Thread-safe.
 */
const KernelTable &best();

/**
 * Process-wide runtime override of the dispatched implementation
 * (test hook and bench `--kernel-impl` flag). Throws on names that
 * are unknown or unavailable on this machine; pass an empty string to
 * restore auto/env resolution. Thread-safe.
 */
void setKernelImpl(const std::string &name);

/**
 * Coarse-grained work accounting, called once per operator invocation
 * (never per row): kernels.ccs.* / kernels.lut.* / kernels.axpy.*
 * bytes and element counters.
 */
void recordCcsWork(std::size_t rows, std::size_t cb_count,
                   std::size_t ct_count, std::size_t v_len);
void recordLutWork(std::size_t rows, std::size_t cb_count,
                   std::size_t f_count, std::size_t elem_bytes);
void recordAxpyWork(std::size_t elements);

} // namespace kernels
} // namespace pimdl

#endif // PIMDL_KERNELS_KERNELS_H
