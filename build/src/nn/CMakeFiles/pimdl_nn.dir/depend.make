# Empty dependencies file for pimdl_nn.
# This may be replaced when dependencies are built.
