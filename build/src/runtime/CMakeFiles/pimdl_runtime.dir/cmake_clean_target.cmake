file(REMOVE_RECURSE
  "libpimdl_runtime.a"
)
