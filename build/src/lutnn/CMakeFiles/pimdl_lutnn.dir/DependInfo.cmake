
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lutnn/codebook.cc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/codebook.cc.o" "gcc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/codebook.cc.o.d"
  "/root/repo/src/lutnn/converter.cc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/converter.cc.o" "gcc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/converter.cc.o.d"
  "/root/repo/src/lutnn/elutnn.cc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/elutnn.cc.o" "gcc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/elutnn.cc.o.d"
  "/root/repo/src/lutnn/flops.cc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/flops.cc.o" "gcc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/flops.cc.o.d"
  "/root/repo/src/lutnn/kmeans.cc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/kmeans.cc.o" "gcc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/kmeans.cc.o.d"
  "/root/repo/src/lutnn/lut_layer.cc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/lut_layer.cc.o" "gcc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/lut_layer.cc.o.d"
  "/root/repo/src/lutnn/serialize.cc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/serialize.cc.o" "gcc" "src/lutnn/CMakeFiles/pimdl_lutnn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pimdl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/pimdl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pimdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pimdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
