#include "lut_executor.h"

#include <algorithm>
#include <cstring>

#include "common/parallel.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/schedule.h"
#include "transfer/layout.h"
#include "verify/verify.h"

namespace pimdl {

LutWorkloadShape
lutShapeFor(const LutLayer &layer, std::size_t rows)
{
    LutWorkloadShape shape;
    shape.n = rows;
    shape.cb = layer.shape().codebooks();
    shape.ct = layer.shape().centroids;
    shape.f = layer.shape().output_dim;
    return shape;
}

namespace {

/** Per-tile outcome of the fault-aware attempt loop (one writer each). */
struct TileOutcome
{
    std::uint32_t transient = 0;
    std::uint32_t bitflips = 0;
    std::uint32_t corruptions = 0;
    std::uint32_t stalls = 0;
    std::uint32_t retries = 0;
    /** Retries exhausted; the tile needs a clean host-side recompute. */
    bool escalated = false;
    /** Stall/backoff/re-execution seconds this tile accumulated. */
    double extra_s = 0.0;
};

/** Flips one bit of one float in a tile buffer (simulated corruption). */
void
flipTileBit(float *data, std::size_t slot, unsigned bit)
{
    std::uint32_t word;
    std::memcpy(&word, data + slot, sizeof(word));
    word ^= 1u << (bit % 32u);
    std::memcpy(data + slot, &word, sizeof(word));
}

} // namespace

DistributedLutResult
runDistributedLut(const PimPlatformConfig &platform, const LutLayer &layer,
                  const IndexMatrix &indices, const LutMapping &mapping,
                  bool quantized, const FaultInjector *faults,
                  const RetryPolicy &retry,
                  const LutTransferContext *transfer_ctx)
{
    const LutWorkloadShape shape = lutShapeFor(layer, indices.rows);
    std::string reason;
    PIMDL_REQUIRE(mappingIsLegal(platform, shape, mapping, &reason),
                  "illegal mapping: " + reason);
    PIMDL_REQUIRE(!quantized || layer.hasQuantizedTables(),
                  "quantized run requires quantizeTables()");
    if (faults != nullptr)
        retry.validate();

    DistributedLutResult result;
    result.cost = evaluateLutMapping(platform, shape, mapping);
    result.pes_used = mapping.totalPes(shape);

    const std::size_t groups = mapping.groups(shape);
    const std::size_t lanes = mapping.pesPerGroup(shape);
    const std::size_t cb = shape.cb;

    // Flight-recorder span + registry counters for this execution. One
    // registry lookup per call (never per PE); PE-side increments go
    // through cached lock-free counters.
    obs::TraceSpan span("lut.runDistributedLut");
    span.attr("n", static_cast<std::uint64_t>(shape.n));
    span.attr("f", static_cast<std::uint64_t>(shape.f));
    span.attr("cb", static_cast<std::uint64_t>(cb));
    span.attr("pes", static_cast<std::uint64_t>(result.pes_used));
    span.attr("model_s", result.cost.total());

    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    static obs::Counter &runs = reg.counter("lut.runs");
    static obs::Counter &pe_kernels = reg.counter("lut.pe_kernels");
    static obs::Counter &link_bytes = reg.counter("lut.link_bytes");
    static obs::Counter &stream_bytes = reg.counter("lut.pe_stream_bytes");
    static obs::Counter &cycles = reg.counter("lut.model_cycles");
    static obs::Histogram &model_latency =
        reg.histogram("lut.model_latency_s");

    runs.add();
    pe_kernels.add(groups * lanes);
    link_bytes.add(static_cast<std::uint64_t>(result.cost.link_bytes));
    stream_bytes.add(static_cast<std::uint64_t>(
        result.cost.pe_stream_bytes * static_cast<double>(result.pes_used)));
    // Modeled PE cycles: lock-step PEs each spend total() seconds at the
    // platform clock.
    cycles.add(static_cast<std::uint64_t>(result.cost.microKernelTotal() *
                                          platform.pe_freq_hz));
    model_latency.record(result.cost.total());

    result.output = Tensor(shape.n, shape.f);
    Tensor &out = result.output;

    // The bit-faithful reduction of one (ns_tile x fs_tile) tile for
    // group g / lane l, written row-major into dst with the given
    // stride. The dispatched micro-kernels guarantee the operation
    // order is identical no matter which PE — or the host — executes
    // the tile, and no matter which ISA variant runs it, which is
    // what keeps degraded-mode and fallback outputs bit-exact.
    const kernels::KernelTable &kt = kernels::best();
    kernels::recordLutWork(shape.n, cb, mapping.fs_tile,
                           quantized ? sizeof(std::int8_t)
                                     : sizeof(float));
    // Reduces @p nrows index rows starting at idx0 (stride idx_stride)
    // against lane l's LUT columns. The index base is a parameter so
    // the same kernel loop runs against the host tensor directly or
    // against a wave's staged copy — identical u16 values either way,
    // which is what makes the staged path bit-exact.
    const auto computeRows = [&](const std::uint16_t *idx0,
                                 std::size_t idx_stride,
                                 std::size_t nrows, float *dst,
                                 std::size_t stride, std::size_t l) {
        const std::size_t col0 = l * mapping.fs_tile;
        if (quantized) {
            // INT8 LUT entries, INT32 on-PE accumulators; the host
            // dequantizes after gathering.
            const float scale = layer.quantScale();
            std::vector<std::int32_t> acc(mapping.fs_tile);
            for (std::size_t r = 0; r < nrows; ++r) {
                kt.lut_accum_i8(idx0 + r * idx_stride, cb, shape.ct,
                                layer.quantLutData(), shape.f, col0,
                                mapping.fs_tile, acc.data());
                float *row = dst + r * stride;
                for (std::size_t fcol = 0; fcol < mapping.fs_tile; ++fcol)
                    row[fcol] = static_cast<float>(acc[fcol]) * scale;
            }
        } else {
            for (std::size_t r = 0; r < nrows; ++r) {
                kt.lut_accum_f32(idx0 + r * idx_stride, cb, shape.ct,
                                 layer.lutData(), shape.f, col0,
                                 mapping.fs_tile, dst + r * stride);
            }
        }
    };

    const auto computeTile = [&](float *dst, std::size_t stride,
                                 std::size_t g, std::size_t l) {
        computeRows(indices.data.data() +
                        g * mapping.ns_tile * indices.cols,
                    indices.cols, mapping.ns_tile, dst, stride, l);
    };

    const auto outTilePtr = [&](std::size_t g, std::size_t l) {
        return out.rowPtr(g * mapping.ns_tile) + l * mapping.fs_tile;
    };

    // ---- Transfer engine: resident-LUT placement -------------------
    // On offload-model platforms every launch re-stages the LUT unless
    // the placement manager says the table is already pinned in the
    // banks; a hit removes t_sub_lut from the engine's modeled time, a
    // miss pays one real scatter burst (packed in WRAM tile order).
    const bool engine_on =
        transfer_ctx != nullptr && transfer_ctx->scheduler != nullptr;
    if (transfer_ctx != nullptr && !platform.lut_resident) {
        const double lut_model_bytes = static_cast<double>(shape.cb) *
                                       static_cast<double>(shape.ct) *
                                       static_cast<double>(shape.f) *
                                       platform.lut_dtype_bytes;
        bool hit = false;
        if (transfer_ctx->resident != nullptr) {
            hit = transfer_ctx->resident->touch(
                transfer_ctx->resident_key, lut_model_bytes);
            if (hit) {
                ++result.transfer.resident_hits;
                result.transfer.saved_stage_s += result.cost.t_sub_lut;
            } else {
                ++result.transfer.resident_misses;
            }
        }
        if (!hit && engine_on) {
            // Scatter-stage the table: each lane's fs_tile columns
            // land contiguously, the layout its WRAM kernel consumes.
            const std::size_t elem =
                quantized ? sizeof(std::int8_t) : sizeof(float);
            const std::size_t lut_rows = shape.cb * shape.ct;
            const void *table =
                quantized ? static_cast<const void *>(layer.quantLutData())
                          : static_cast<const void *>(layer.lutData());
            auto lut_chan = transfer_ctx->scheduler->openChannel(
                "transfer.lut.tables");
            transfer::StageRequest req;
            req.bytes = lut_rows * shape.f * elem;
            req.modeled_seconds = result.cost.t_sub_lut;
            req.fill = [&, table, lut_rows, elem](std::uint8_t *dst,
                                                  std::size_t) {
                transfer::packColumnTiles(table, lut_rows, shape.f,
                                          mapping.fs_tile, elem, dst);
            };
            const std::size_t ticket = lut_chan->stage(std::move(req));
            lut_chan->wait(ticket);
            const transfer::StagedBurstReport br =
                lut_chan->report(ticket);
            lut_chan->release(ticket);
            ++result.transfer.bursts;
            result.transfer.staged_bytes +=
                static_cast<double>(lut_rows * shape.f * elem);
            result.transfer.transfer_model_s += result.cost.t_sub_lut;
            result.transfer.stalls += br.stalls;
            result.transfer.corrupt_retries += br.corrupt_retries;
            result.transfer.burst_added_s += br.added_seconds;
        }
    }

    if (faults == nullptr && engine_on) {
        // ---- Transfer engine: double-buffered wave broadcast -------
        // The index broadcast is split into stage_waves row chunks;
        // wave w's staged fill runs on the transfer thread while the
        // lock-step PEs reduce wave w-1, so all but the first wave's
        // transfer hides behind compute (up to the shorter of the two
        // per-wave times — the classic double-buffer bound).
        const std::size_t waves = std::max<std::size_t>(
            1, std::min(transfer_ctx->stage_waves, mapping.ns_tile));
        const std::size_t rpw = (mapping.ns_tile + waves - 1) / waves;
        const auto waveRow0 = [&](std::size_t w) { return w * rpw; };
        const auto waveRows = [&](std::size_t w) {
            return std::min(rpw, mapping.ns_tile - waveRow0(w));
        };
        const double micro_s = result.cost.microKernelTotal();
        const double ns_total = static_cast<double>(mapping.ns_tile);

        auto chan = transfer_ctx->scheduler->openChannel(
            "transfer.lut.indices");
        const auto stageWave = [&](std::size_t w) {
            const std::size_t nrows = waveRows(w);
            transfer::StageRequest req;
            req.bytes =
                groups * nrows * indices.cols * sizeof(std::uint16_t);
            req.modeled_seconds = result.cost.t_sub_index *
                                  static_cast<double>(nrows) / ns_total;
            req.fill = [&, w, nrows](std::uint8_t *dst, std::size_t) {
                transfer::packWaveRows(indices.data.data(), groups,
                                       mapping.ns_tile, waveRow0(w),
                                       nrows, indices.cols,
                                       sizeof(std::uint16_t), dst);
            };
            return chan->stage(std::move(req));
        };

        std::size_t tickets[2];
        tickets[0] = stageWave(0);
        double prev_compute_s = 0.0;
        for (std::size_t w = 0; w < waves; ++w) {
            const std::size_t nrows = waveRows(w);
            const double frac = static_cast<double>(nrows) / ns_total;
            const double wave_transfer_s =
                result.cost.t_sub_index * frac;
            const std::vector<std::uint8_t> &buf =
                chan->wait(tickets[w % 2]);
            // Fill of wave w+1 proceeds on the transfer thread while
            // this wave computes below — the overlap itself.
            if (w + 1 < waves)
                tickets[(w + 1) % 2] = stageWave(w + 1);
            const auto *staged =
                reinterpret_cast<const std::uint16_t *>(buf.data());
            parallelFor(groups * lanes, [&](std::size_t pe) {
                const std::size_t g = pe / lanes;
                const std::size_t l = pe % lanes;
                computeRows(staged + g * nrows * indices.cols,
                            indices.cols, nrows,
                            out.rowPtr(g * mapping.ns_tile +
                                       waveRow0(w)) +
                                l * mapping.fs_tile,
                            out.cols(), l);
            });
            const transfer::StagedBurstReport br =
                chan->report(tickets[w % 2]);
            chan->release(tickets[w % 2]);
            ++result.transfer.bursts;
            result.transfer.staged_bytes += static_cast<double>(
                groups * nrows * indices.cols * sizeof(std::uint16_t));
            result.transfer.transfer_model_s += wave_transfer_s;
            result.transfer.stalls += br.stalls;
            result.transfer.corrupt_retries += br.corrupt_retries;
            result.transfer.burst_added_s += br.added_seconds;
            // Wave w's transfer (w >= 1) hid behind wave w-1's
            // compute: at most the shorter of the two modeled times.
            if (w > 0)
                result.transfer.hidden_model_s +=
                    std::min(wave_transfer_s, prev_compute_s);
            prev_compute_s = micro_s * frac;
        }

        static obs::Gauge &g_overlap =
            reg.gauge("transfer.overlap_frac");
        g_overlap.set(result.transfer.overlapFrac());
        span.attr("transfer_hidden_s", result.transfer.hidden_model_s);
    } else if (faults == nullptr) {
        // Fault-free fast path: each simulated PE (group g, lane l)
        // reduces its own tile straight into the output.
        parallelFor(groups * lanes, [&](std::size_t pe) {
            computeTile(outTilePtr(pe / lanes, pe % lanes), out.cols(),
                        pe / lanes, pe % lanes);
        });
    } else {
        const std::size_t tiles = groups * lanes;

        // Stage 1 of the ladder: find the permanently dead PEs in this
        // mapping's pool and, if any, re-schedule their tiles onto the
        // survivors (degraded mode). No survivors at all => the engine
        // abandons the PIM and serves the operator from the host LUT.
        std::vector<bool> failed(tiles, false);
        std::size_t hard_failed = 0;
        for (std::size_t pe = 0; pe < tiles; ++pe) {
            if (faults->peHardFailed(pe)) {
                failed[pe] = true;
                ++hard_failed;
            }
        }
        result.fault.hard_failed_pes = hard_failed;

        static obs::Counter &c_fallbacks =
            reg.counter("fault.lut.host_fallbacks");
        static obs::Counter &c_transient =
            reg.counter("fault.injected.pe_transient");
        static obs::Counter &c_bitflip =
            reg.counter("fault.injected.lut_bitflip");
        static obs::Counter &c_corrupt =
            reg.counter("fault.injected.transfer_corrupt");
        static obs::Counter &c_stall =
            reg.counter("fault.injected.transfer_stall");
        static obs::Counter &c_retries = reg.counter("fault.lut.retries");
        static obs::Counter &c_mismatches =
            reg.counter("fault.lut.checksum_mismatches");
        static obs::Counter &c_remapped =
            reg.counter("fault.lut.tiles_remapped");
        static obs::Counter &c_dead = reg.counter("fault.lut.dead_pes");
        static obs::Histogram &h_added =
            reg.histogram("fault.lut.added_latency_s");

        DegradedLutRemap remap;
        if (hard_failed > 0) {
            c_dead.add(hard_failed);
            remap = planDegradedLutRemap(shape, mapping, failed);
            if (!remap.legal) {
                // Ladder bottom: graceful host fallback. lookup() /
                // lookupQuantized() applies the bias itself, so return
                // before the distributed bias pass.
                obs::TraceSpan fb("fault.host_fallback");
                fb.attr("dead_pes",
                        static_cast<std::uint64_t>(hard_failed));
                result.output = quantized ? layer.lookupQuantized(indices)
                                          : layer.lookup(indices);
                result.fault.host_fallback = true;
                c_fallbacks.add();
                span.attr("host_fallback", std::uint64_t{1});
                return result;
            }
            result.fault.degraded_waves = remap.waves;
            if (verify::verifyPlansEnabled()) {
                verify::requireClean(
                    verify::verifyDegradedRemap(shape, mapping, failed,
                                                remap),
                    "degraded remap verification");
            }
        }

        // One epoch per kernel launch: consecutive executions see fresh
        // (but still seed-deterministic) draws.
        const std::uint64_t epoch = faults->nextEpoch();
        // Modeled cost of re-running one PE kernel attempt.
        const double attempt_cost =
            result.cost.microKernelTotal() + result.cost.kernel_launch;
        const std::size_t tile_floats =
            mapping.ns_tile * mapping.fs_tile;
        const std::size_t tile_bytes = tile_floats * sizeof(float);

        std::vector<TileOutcome> outcomes(tiles);

        parallelFor(tiles, [&](std::size_t tile) {
            const std::size_t g = tile / lanes;
            const std::size_t l = tile % lanes;
            // Physical executor of this logical tile (survivor under
            // degraded mode, the owning PE otherwise).
            const std::size_t pe =
                remap.legal ? remap.tile_owner[tile] : tile;
            TileOutcome &oc = outcomes[tile];

            std::vector<float> scratch(tile_floats);
            for (std::size_t attempt = 0; attempt <= retry.max_retries;
                 ++attempt) {
                if (faults->transferStall(epoch, pe, attempt)) {
                    ++oc.stalls;
                    oc.extra_s += faults->config().stall_penalty_s;
                }

                bool delivered = false;
                if (faults->transientCrash(epoch, pe, attempt)) {
                    ++oc.transient;
                } else {
                    computeTile(scratch.data(), mapping.fs_tile, g, l);
                    // The PE stamps a checksum on the tile it computed;
                    // corruption strikes after that stamp (in the
                    // resident LUT scrub window or on the wire), so the
                    // host-side re-checksum exposes it.
                    const std::uint64_t device_sum =
                        faultChecksum(scratch.data(), tile_bytes);
                    bool corrupted = false;
                    if (faults->lutBitFlip(epoch, pe, attempt)) {
                        flipTileBit(
                            scratch.data(),
                            faults->corruptionTarget(epoch, pe, attempt,
                                                     tile_floats),
                            static_cast<unsigned>(epoch + attempt));
                        ++oc.bitflips;
                        corrupted = true;
                        // Recovery re-stages the scrubbed LUT tile from
                        // the host copy: one more per-PE LUT load.
                        oc.extra_s += result.cost.t_ld_lut;
                    } else if (faults->transferCorrupt(epoch, pe,
                                                       attempt)) {
                        flipTileBit(
                            scratch.data(),
                            faults->corruptionTarget(epoch, pe, attempt,
                                                     tile_floats),
                            static_cast<unsigned>(epoch + attempt + 7));
                        ++oc.corruptions;
                        corrupted = true;
                    }
                    const std::uint64_t host_sum =
                        faultChecksum(scratch.data(), tile_bytes);
                    delivered = !corrupted && host_sum == device_sum;
                }

                if (delivered) {
                    float *dst = outTilePtr(g, l);
                    for (std::size_t r = 0; r < mapping.ns_tile; ++r)
                        std::memcpy(dst + r * out.cols(),
                                    scratch.data() + r * mapping.fs_tile,
                                    mapping.fs_tile * sizeof(float));
                    return;
                }
                if (attempt == retry.max_retries) {
                    oc.escalated = true;
                    return;
                }
                // Capped exponential backoff, then re-execute.
                ++oc.retries;
                oc.extra_s += retry.backoffFor(attempt) + attempt_cost;
            }
        });

        // Deterministic aggregation after the parallel pass (each tile
        // outcome had exactly one writer).
        double max_tile_extra = 0.0;
        std::size_t escalated = 0;
        for (const TileOutcome &oc : outcomes) {
            result.fault.transient_crashes += oc.transient;
            result.fault.lut_bitflips += oc.bitflips;
            result.fault.checksum_mismatches += oc.corruptions;
            result.fault.stalls += oc.stalls;
            result.fault.retries += oc.retries;
            if (oc.escalated)
                ++escalated;
            max_tile_extra = std::max(max_tile_extra, oc.extra_s);
        }

        // Escalation: a tile that exhausted its retries is treated as
        // running on a just-failed PE — the host recomputes it from its
        // own LUT copy, serially, preserving bit-exact output.
        if (escalated > 0) {
            for (std::size_t tile = 0; tile < tiles; ++tile) {
                if (!outcomes[tile].escalated)
                    continue;
                computeTile(outTilePtr(tile / lanes, tile % lanes),
                            out.cols(), tile / lanes, tile % lanes);
            }
        }

        // Stall/retry terms for the analytical timing: lock-step PEs
        // finish with the slowest tile's recovery chain; degraded mode
        // serializes the survivors into `waves` rounds; escalated tiles
        // recompute serially on the host.
        double remapped = 0.0;
        if (remap.legal) {
            result.fault.added_latency_s +=
                static_cast<double>(remap.waves - 1) * attempt_cost;
            for (std::size_t tile = 0; tile < tiles; ++tile) {
                if (remap.tile_owner[tile] != tile)
                    remapped += 1.0;
            }
        }
        result.fault.tiles_remapped =
            static_cast<std::size_t>(remapped) + escalated;
        result.fault.added_latency_s +=
            max_tile_extra + static_cast<double>(escalated) * attempt_cost;

        c_transient.add(result.fault.transient_crashes);
        c_bitflip.add(result.fault.lut_bitflips);
        c_corrupt.add(result.fault.checksum_mismatches);
        c_stall.add(result.fault.stalls);
        c_retries.add(result.fault.retries);
        c_mismatches.add(result.fault.checksum_mismatches +
                         result.fault.lut_bitflips);
        c_remapped.add(result.fault.tiles_remapped);
        h_added.record(result.fault.added_latency_s);

        if (!result.fault.faultFree()) {
            obs::TraceSpan recover("fault.recover");
            recover.attr("retries", static_cast<std::uint64_t>(
                                        result.fault.retries));
            recover.attr("remapped", static_cast<std::uint64_t>(
                                         result.fault.tiles_remapped));
            recover.attr("added_s", result.fault.added_latency_s);
        }
        span.attr("fault_retries",
                  static_cast<std::uint64_t>(result.fault.retries));
        span.attr("fault_added_s", result.fault.added_latency_s);
    }

    // Bias is applied host-side after gathering (element-wise op).
    if (!layer.bias().empty()) {
        for (std::size_t r = 0; r < out.rows(); ++r) {
            float *dst = out.rowPtr(r);
            for (std::size_t fcol = 0; fcol < out.cols(); ++fcol)
                dst[fcol] += layer.bias()[fcol];
        }
    }
    return result;
}

} // namespace pimdl
