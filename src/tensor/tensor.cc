#include "tensor.h"

#include <cmath>

#include "common/rng.h"

namespace pimdl {

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    PIMDL_REQUIRE(data_.size() == rows_ * cols_,
                  "tensor data size does not match shape");
}

void
Tensor::fill(float value)
{
    for (auto &v : data_)
        v = value;
}

void
Tensor::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &v : data_)
        v = rng.gaussian(mean, stddev);
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : data_)
        v = rng.uniform(lo, hi);
}

void
Tensor::reshape(std::size_t rows, std::size_t cols)
{
    PIMDL_REQUIRE(rows * cols == data_.size(),
                  "reshape must preserve element count");
    rows_ = rows;
    cols_ = cols;
}

Tensor
Tensor::transposed() const
{
    Tensor out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const float *src = rowPtr(r);
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = src[c];
    }
    return out;
}

Tensor
Tensor::rowSlice(std::size_t begin, std::size_t end) const
{
    PIMDL_REQUIRE(begin <= end && end <= rows_, "row slice out of range");
    Tensor out(end - begin, cols_);
    for (std::size_t r = begin; r < end; ++r) {
        const float *src = rowPtr(r);
        float *dst = out.rowPtr(r - begin);
        for (std::size_t c = 0; c < cols_; ++c)
            dst[c] = src[c];
    }
    return out;
}

Tensor
Tensor::colSlice(std::size_t begin, std::size_t end) const
{
    PIMDL_REQUIRE(begin <= end && end <= cols_, "col slice out of range");
    Tensor out(rows_, end - begin);
    for (std::size_t r = 0; r < rows_; ++r) {
        const float *src = rowPtr(r);
        float *dst = out.rowPtr(r);
        for (std::size_t c = begin; c < end; ++c)
            dst[c - begin] = src[c];
    }
    return out;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    PIMDL_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch in maxAbsDiff");
    float max_diff = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const float d = std::fabs(a.data()[i] - b.data()[i]);
        if (d > max_diff)
            max_diff = d;
    }
    return max_diff;
}

float
frobeniusNorm(const Tensor &t)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const double v = t.data()[i];
        sum += v * v;
    }
    return static_cast<float>(std::sqrt(sum));
}

float
relativeError(const Tensor &approx, const Tensor &reference)
{
    PIMDL_REQUIRE(approx.rows() == reference.rows() &&
                      approx.cols() == reference.cols(),
                  "shape mismatch in relativeError");
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < approx.size(); ++i) {
        const double d = approx.data()[i] - reference.data()[i];
        const double r = reference.data()[i];
        num += d * d;
        den += r * r;
    }
    if (den == 0.0)
        return static_cast<float>(std::sqrt(num));
    return static_cast<float>(std::sqrt(num / den));
}

} // namespace pimdl
