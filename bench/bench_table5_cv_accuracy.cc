/**
 * @file
 * Table 5 reproduction (vision model accuracy). The paper evaluates
 * ViT-base/huge on CIFAR-10/100: full-layer baseline LUT-NN collapses
 * to ~random (10.1/1.07) while eLUT-NN stays within ~2 points of the
 * original. CIFAR is substituted by a patch-grid synthetic task.
 */

#include <iostream>

#include "bench_util.h"
#include "accuracy_harness.h"
#include "common/table.h"

using namespace pimdl;
using namespace pimdl::bench;

namespace {

AccuracyExperiment
cvExperiment(const std::string &name, std::size_t layers,
             std::size_t classes, std::uint64_t seed)
{
    AccuracyExperiment exp;
    exp.task_name = name;

    exp.model.input_dim = 16; // "patch embedding" width
    exp.model.hidden = 16;
    exp.model.ffn = 32;
    exp.model.layers = layers;
    exp.model.classes = classes;
    exp.model.seq_len = 9; // 3x3 patch grid
    exp.model.subvec_len = 2;
    exp.model.centroids = 16;
    exp.model.seed = seed;

    exp.task.style = TaskStyle::PatchGrid;
    exp.task.classes = classes;
    exp.task.seq_len = 9;
    exp.task.input_dim = 16;
    exp.task.noise = 1.2f;
    exp.task.train_samples = 768;
    exp.task.test_samples = 192;
    exp.task.seed = seed * 13 + 5;

    exp.train.epochs = 20;
    exp.train.batch_size = 16;
    exp.train.lr = 3e-3f;

    exp.elutnn.epochs = 60;
    exp.elutnn.data_fraction = 0.10f;
    exp.elutnn.recon_beta = 1e-4f; // paper: beta = 1e-4 for ViT
    exp.elutnn.lr = 3e-3f;
    exp.elutnn.init = CodebookInit::Random;

    exp.baseline.epochs = 6;
    exp.baseline.data_fraction = 1.0f;
    exp.baseline.lr = 1e-3f;
    exp.baseline.init = CodebookInit::Random;
    return exp;
}

} // namespace

int
main(int argc, char **argv)
{
    const pimdl::bench::BenchOptions opts =
        pimdl::bench::parseBenchArgs(argc, argv);
    printBanner(std::cout,
                "Table 5: vision-analog accuracy under full-layer LUT "
                "replacement (V=2, CT=16)");

    TablePrinter table({"Model", "Task", "Classes", "Original",
                        "LUT-NN (baseline)", "eLUT-NN", "eLUT-NN data"});

    struct Spec
    {
        const char *model;
        std::size_t layers;
        const char *task;
        std::size_t classes;
        std::uint64_t seed;
    };
    for (const Spec spec :
         {Spec{"vit-mini", 3, "patch-4", 4, 31},
          Spec{"vit-mini", 3, "patch-8", 8, 32},
          Spec{"vit-small", 4, "patch-4", 4, 33},
          Spec{"vit-small", 4, "patch-8", 8, 34}}) {
        AccuracyExperiment exp =
            cvExperiment(spec.task, spec.layers, spec.classes, spec.seed);
        const AccuracyRow row = runAccuracyExperiment(exp);
        table.addRow({
            spec.model,
            row.task,
            std::to_string(spec.classes),
            TablePrinter::fmt(100.0 * row.original, 1),
            TablePrinter::fmt(100.0 * row.baseline_lutnn, 1),
            TablePrinter::fmt(100.0 * row.elutnn, 1),
            TablePrinter::fmt(100.0 * row.elutnn_data_fraction, 1) + "%",
        });
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (ViT-base CIFAR-10): original 98.5, "
                 "baseline LUT-NN 10.1 (random), eLUT-NN 96.3.\n";
    pimdl::bench::writeBenchArtifacts(opts);
    return 0;
}
