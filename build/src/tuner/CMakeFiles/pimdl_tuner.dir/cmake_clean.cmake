file(REMOVE_RECURSE
  "CMakeFiles/pimdl_tuner.dir/autotuner.cc.o"
  "CMakeFiles/pimdl_tuner.dir/autotuner.cc.o.d"
  "CMakeFiles/pimdl_tuner.dir/cache_model.cc.o"
  "CMakeFiles/pimdl_tuner.dir/cache_model.cc.o.d"
  "CMakeFiles/pimdl_tuner.dir/cost_model.cc.o"
  "CMakeFiles/pimdl_tuner.dir/cost_model.cc.o.d"
  "CMakeFiles/pimdl_tuner.dir/mapping.cc.o"
  "CMakeFiles/pimdl_tuner.dir/mapping.cc.o.d"
  "CMakeFiles/pimdl_tuner.dir/simulator.cc.o"
  "CMakeFiles/pimdl_tuner.dir/simulator.cc.o.d"
  "libpimdl_tuner.a"
  "libpimdl_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimdl_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
