#include "trace.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "json.h"

namespace pimdl {
namespace obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now())
{
    ring_.reserve(capacity_);
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setCapacity(std::size_t capacity)
{
    MutexLock guard(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    ring_.clear();
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
    head_ = 0;
    total_ = 0;
}

std::size_t
Tracer::capacity() const
{
    MutexLock guard(mutex_);
    return capacity_;
}

void
Tracer::record(TraceEvent event)
{
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    MutexLock guard(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
    } else {
        ring_[head_] = std::move(event);
        head_ = (head_ + 1) % capacity_;
    }
    ++total_;
}

std::vector<TraceEvent>
Tracer::events() const
{
    MutexLock guard(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::uint64_t
Tracer::recorded() const
{
    MutexLock guard(mutex_);
    return total_;
}

std::uint64_t
Tracer::dropped() const
{
    MutexLock guard(mutex_);
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void
Tracer::clear()
{
    MutexLock guard(mutex_);
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

std::uint64_t
Tracer::nowMicros() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

std::uint64_t
Tracer::currentThreadId()
{
    // Dense ids in registration order read better in the viewer than
    // raw pthread handles.
    static std::atomic<std::uint64_t> next{0};
    thread_local const std::uint64_t id = next.fetch_add(1);
    return id;
}

std::string
Tracer::toChromeJson() const
{
    const std::vector<TraceEvent> evs = events();
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    for (std::size_t i = 0; i < evs.size(); ++i) {
        const TraceEvent &e = evs[i];
        if (i)
            out << ",";
        out << "{\"name\":" << jsonString(e.name)
            << ",\"cat\":\"pimdl\",\"ph\":\"X\",\"pid\":1,\"tid\":"
            << e.tid << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us;
        if (!e.args.empty()) {
            out << ",\"args\":{";
            for (std::size_t a = 0; a < e.args.size(); ++a) {
                if (a)
                    out << ",";
                out << jsonString(e.args[a].first) << ":"
                    << e.args[a].second;
            }
            out << "}";
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}

TraceSpan::TraceSpan(std::string name)
{
    Tracer &tracer = Tracer::instance();
    if (!tracer.enabled())
        return;
    active_ = true;
    event_.name = std::move(name);
    event_.ts_us = tracer.nowMicros();
    event_.tid = Tracer::currentThreadId();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    Tracer &tracer = Tracer::instance();
    const std::uint64_t end = tracer.nowMicros();
    event_.dur_us = end > event_.ts_us ? end - event_.ts_us : 0;
    tracer.record(std::move(event_));
}

void
TraceSpan::attr(const std::string &key, const std::string &value)
{
    if (active_)
        event_.args.emplace_back(key, jsonString(value));
}

void
TraceSpan::attr(const std::string &key, const char *value)
{
    attr(key, std::string(value));
}

void
TraceSpan::attr(const std::string &key, double value)
{
    if (active_)
        event_.args.emplace_back(key, jsonNumber(value));
}

void
TraceSpan::attr(const std::string &key, std::uint64_t value)
{
    if (active_)
        event_.args.emplace_back(key, std::to_string(value));
}

} // namespace obs
} // namespace pimdl
