/**
 * @file
 * Thread-safe memoization of auto-tuner searches, keyed by the full
 * `LutWorkloadShape`. Serving loops, mapping sweeps, and per-layer
 * lowering re-plan identical shapes constantly; the paper tunes each
 * model once offline (Section 5.3), so caching the search is faithful.
 * One memo is shared by every consumer that needs tuned mappings (the
 * engine's plan costing and the functional transformer's PIM planning),
 * replacing the per-consumer ad-hoc caches that re-tuned from scratch.
 */

#ifndef PIMDL_TUNER_TUNE_MEMO_H
#define PIMDL_TUNER_TUNE_MEMO_H

#include <map>

#include "common/thread_annotations.h"
#include "tuner/autotuner.h"

namespace pimdl {

/** Memoizing, mutex-guarded front-end to one AutoTuner. */
class TuneMemo
{
  public:
    /** @p tuner must outlive the memo. */
    explicit TuneMemo(const AutoTuner &tuner) : tuner_(tuner) {}

    TuneMemo(const TuneMemo &) = delete;
    TuneMemo &operator=(const TuneMemo &) = delete;

    /**
     * Tunes @p shape through the cache. Safe to call concurrently
     * (parallelFor-driven sweeps); the returned reference stays valid
     * for the memo's lifetime (map nodes are never erased).
     */
    const AutoTuneResult &
    tune(const LutWorkloadShape &shape) const PIMDL_EXCLUDES(mu_)
    {
        {
            MutexLock lock(mu_);
            const auto it = cache_.find(shape);
            if (it != cache_.end())
                return it->second;
        }
        // Search outside the lock so concurrent misses on distinct
        // shapes tune in parallel; duplicate work on the same shape is
        // deterministic, and emplace keeps the first inserted result.
        AutoTuneResult result = tuner_.tune(shape);
        MutexLock lock(mu_);
        return cache_.emplace(shape, std::move(result)).first->second;
    }

    /** Number of distinct shapes tuned so far. */
    std::size_t
    size() const PIMDL_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return cache_.size();
    }

    const AutoTuner &tuner() const { return tuner_; }

  private:
    const AutoTuner &tuner_;
    mutable Mutex mu_{"tuner.tune_memo"};
    mutable std::map<LutWorkloadShape, AutoTuneResult> cache_
        PIMDL_GUARDED_BY(mu_);
};

} // namespace pimdl

#endif // PIMDL_TUNER_TUNE_MEMO_H
