#include "parallel.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pimdl {

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

std::size_t
parallelWorkerCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
parallelFor(std::size_t count, const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    // Cached metric references: the registry never invalidates them.
    static obs::Counter &calls =
        obs::MetricsRegistry::instance().counter("parallel.calls");
    static obs::Counter &items =
        obs::MetricsRegistry::instance().counter("parallel.items");
    static obs::Gauge &worker_gauge =
        obs::MetricsRegistry::instance().gauge("parallel.workers");
    static obs::Histogram &utilization =
        obs::MetricsRegistry::instance().histogram(
            "parallel.worker_utilization");

    calls.add();
    items.add(count);

    const std::size_t workers =
        std::min<std::size_t>(parallelWorkerCount(), count);
    worker_gauge.set(static_cast<double>(workers));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        utilization.record(1.0);
        return;
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<double> busy_s(workers, 0.0);
    const auto wall_start = std::chrono::steady_clock::now();

    const std::size_t chunk = (count + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(count, begin + chunk);
        if (begin >= end)
            break;
        pool.emplace_back([&, w, begin, end]() {
            const auto start = std::chrono::steady_clock::now();
            try {
                for (std::size_t i = begin; i < end; ++i)
                    body(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
            busy_s[w] = secondsSince(start);
        });
    }
    for (auto &t : pool)
        t.join();

    // Utilization = mean busy fraction across workers for this call;
    // 1.0 means perfectly balanced shards, low values mean stragglers.
    const double wall = secondsSince(wall_start);
    if (wall > 0.0) {
        double busy_total = 0.0;
        for (double b : busy_s)
            busy_total += b;
        utilization.record(
            std::min(1.0, busy_total / (wall * static_cast<double>(
                                                   pool.size()))));
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace pimdl
