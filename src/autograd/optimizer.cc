#include "optimizer.h"

#include <cmath>

namespace pimdl {
namespace ag {

void
Optimizer::zeroGrad()
{
    for (auto &p : params_)
        p.zeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum)
{
    velocity_.reserve(params_.size());
    for (const auto &p : params_)
        velocity_.emplace_back(p.rows(), p.cols());
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto &p = params_[i];
        if (p.grad().empty())
            continue;
        Tensor &val = p.mutableValue();
        Tensor &vel = velocity_[i];
        const Tensor &g = p.grad();
        for (std::size_t j = 0; j < val.size(); ++j) {
            vel.data()[j] = momentum_ * vel.data()[j] + g.data()[j];
            val.data()[j] -= lr_ * vel.data()[j];
        }
    }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float epsilon)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      epsilon_(epsilon)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto &p : params_) {
        m_.emplace_back(p.rows(), p.cols());
        v_.emplace_back(p.rows(), p.cols());
    }
}

void
Adam::step()
{
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto &p = params_[i];
        if (p.grad().empty())
            continue;
        Tensor &val = p.mutableValue();
        const Tensor &g = p.grad();
        Tensor &m = m_[i];
        Tensor &v = v_[i];
        for (std::size_t j = 0; j < val.size(); ++j) {
            const float gj = g.data()[j];
            m.data()[j] = beta1_ * m.data()[j] + (1.0f - beta1_) * gj;
            v.data()[j] = beta2_ * v.data()[j] + (1.0f - beta2_) * gj * gj;
            const float m_hat = m.data()[j] / bc1;
            const float v_hat = v.data()[j] / bc2;
            val.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
        }
    }
}

} // namespace ag
} // namespace pimdl
