#include "autotuner.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pimdl {

namespace {

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

AutoTuner::AutoTuner(PimPlatformConfig platform, AutoTuneOptions options)
    : platform_(std::move(platform)), options_(options)
{}

LutCostBreakdown
AutoTuner::evaluateCandidate(const LutWorkloadShape &shape,
                             const LutMapping &mapping) const
{
    if (timing_)
        return timing_->lutCost(shape, mapping);
    return evaluateLutMapping(platform_, shape, mapping);
}

std::vector<std::size_t>
AutoTuner::subLutCandidates(std::size_t total) const
{
    // Sub-LUT factors use the complete divisor list (never thinned, not
    // restricted to powers of two): Eq. 5's exact-PE pairing needs e.g.
    // fs = 144 for F = 2304 on 1024 PEs.
    std::vector<std::size_t> candidates;
    for (std::size_t d = 1; d * d <= total; ++d) {
        if (total % d != 0)
            continue;
        candidates.push_back(d);
        if (d != total / d)
            candidates.push_back(total / d);
    }
    std::sort(candidates.begin(), candidates.end());
    return candidates;
}

std::vector<std::size_t>
AutoTuner::tileCandidates(std::size_t total) const
{
    std::vector<std::size_t> candidates;
    for (std::size_t d = 1; d <= total; ++d) {
        if (total % d != 0)
            continue;
        if (options_.power_of_two_tiles && !isPowerOfTwo(d) && d != total)
            continue;
        candidates.push_back(d);
    }

    // Thin oversized candidate lists (keeping the endpoints) so the
    // exhaustive Algorithm-1 walk stays tractable on big workloads.
    const std::size_t cap = options_.max_tile_candidates;
    if (cap >= 2 && candidates.size() > cap) {
        std::vector<std::size_t> thinned;
        thinned.reserve(cap);
        const double stride = static_cast<double>(candidates.size() - 1) /
                              static_cast<double>(cap - 1);
        for (std::size_t i = 0; i < cap; ++i) {
            const std::size_t idx =
                static_cast<std::size_t>(i * stride + 0.5);
            if (thinned.empty() || thinned.back() != candidates[idx])
                thinned.push_back(candidates[idx]);
        }
        return thinned;
    }
    return candidates;
}

std::vector<std::pair<std::size_t, std::size_t>>
AutoTuner::legalSubLutTilings(const LutWorkloadShape &shape) const
{
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t ns : subLutCandidates(shape.n)) {
        const std::size_t groups = shape.n / ns;
        if (groups > platform_.num_pes)
            continue;
        for (std::size_t fs : subLutCandidates(shape.f)) {
            const std::size_t pes = groups * (shape.f / fs);
            if (pes > platform_.num_pes)
                continue;
            if (options_.require_full_pe_use && pes != platform_.num_pes)
                continue;
            pairs.emplace_back(ns, fs);
        }
    }
    return pairs;
}

AutoTuneResult
AutoTuner::kernelSearch(const LutWorkloadShape &shape, std::size_t ns_tile,
                        std::size_t fs_tile) const
{
    AutoTuneResult best;

    const auto nm_candidates = tileCandidates(ns_tile);
    const auto fm_candidates = tileCandidates(fs_tile);
    const auto cbm_candidates = tileCandidates(shape.cb);

    std::size_t pruned = 0;
    auto consider = [&](const LutMapping &mapping) {
        const LutCostBreakdown cost = evaluateCandidate(shape, mapping);
        ++best.evaluated;
        if (!cost.legal) {
            ++pruned;
            return;
        }
        if (!best.found || cost.total() < best.cost.total()) {
            best.found = true;
            best.mapping = mapping;
            best.cost = cost;
        }
    };

    LutMapping mapping;
    mapping.ns_tile = ns_tile;
    mapping.fs_tile = fs_tile;

    for (std::size_t nm : nm_candidates) {
        mapping.nm_tile = nm;
        for (std::size_t fm : fm_candidates) {
            mapping.fm_tile = fm;
            for (std::size_t cbm : cbm_candidates) {
                mapping.cbm_tile = cbm;
                for (TraversalOrder order : kAllTraversalOrders) {
                    mapping.order = order;

                    if (!options_.fix_scheme ||
                        options_.scheme == LutLoadScheme::Static) {
                        mapping.scheme = LutLoadScheme::Static;
                        mapping.cb_load_tile = cbm;
                        mapping.f_load_tile = fm;
                        consider(mapping);
                    }
                    if (!options_.fix_scheme ||
                        options_.scheme == LutLoadScheme::CoarseGrain) {
                        mapping.scheme = LutLoadScheme::CoarseGrain;
                        for (std::size_t cbl : tileCandidates(cbm)) {
                            mapping.cb_load_tile = cbl;
                            for (std::size_t fl : tileCandidates(fm)) {
                                mapping.f_load_tile = fl;
                                consider(mapping);
                            }
                        }
                    }
                    if (!options_.fix_scheme ||
                        options_.scheme == LutLoadScheme::FineGrain) {
                        mapping.scheme = LutLoadScheme::FineGrain;
                        mapping.cb_load_tile = 1;
                        for (std::size_t fl : tileCandidates(fm)) {
                            mapping.f_load_tile = fl;
                            consider(mapping);
                        }
                    }
                }
            }
        }
    }

    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    static obs::Counter &evaluated =
        reg.counter("tuner.mappings_evaluated");
    static obs::Counter &pruned_total =
        reg.counter("tuner.mappings_pruned");
    evaluated.add(best.evaluated);
    pruned_total.add(pruned);
    return best;
}

AutoTuneResult
AutoTuner::tune(const LutWorkloadShape &shape) const
{
    obs::TraceSpan span("tuner.tune");
    span.attr("n", static_cast<std::uint64_t>(shape.n));
    span.attr("cb", static_cast<std::uint64_t>(shape.cb));
    span.attr("ct", static_cast<std::uint64_t>(shape.ct));
    span.attr("f", static_cast<std::uint64_t>(shape.f));
    const auto wall_start = std::chrono::steady_clock::now();
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    static obs::Counter &searches = reg.counter("tuner.searches");
    static obs::Histogram &wall_hist =
        reg.histogram("tuner.search_wall_s");
    searches.add();
    auto search = [&](bool full_pe) {
        AutoTuneResult best;
        for (const auto &[ns, fs] : legalSubLutTilings(shape)) {
            if (full_pe &&
                (shape.n / ns) * (shape.f / fs) != platform_.num_pes)
                continue;
            AutoTuneResult candidate = kernelSearch(shape, ns, fs);
            best.evaluated += candidate.evaluated;
            if (candidate.found &&
                (!best.found ||
                 candidate.cost.total() < best.cost.total())) {
                best.found = candidate.found;
                best.mapping = candidate.mapping;
                best.cost = candidate.cost;
            }
        }
        return best;
    };

    // Eq. 5 with equality: the partition occupies every PE. Shapes whose
    // divisors cannot tile all PEs exactly fall back to partial use.
    AutoTuneResult best = search(true);
    if (!best.found && !options_.require_full_pe_use) {
        AutoTuneResult relaxed = search(false);
        relaxed.evaluated += best.evaluated;
        best = relaxed;
    }

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    wall_hist.record(wall_s);
    span.attr("evaluated", static_cast<std::uint64_t>(best.evaluated));
    span.attr("found", best.found ? "true" : "false");
    return best;
}

} // namespace pimdl
