/** @file Discrete micro-kernel simulator tests. */

#include <gtest/gtest.h>

#include "tuner/autotuner.h"
#include "tuner/simulator.h"

namespace pimdl {
namespace {

LutWorkloadShape
shape()
{
    LutWorkloadShape s;
    s.n = 4096;
    s.cb = 128;
    s.ct = 16;
    s.f = 1024;
    return s;
}

LutMapping
mapping()
{
    LutMapping m;
    m.ns_tile = 256;  // 16 groups
    m.fs_tile = 64;   // 16 lanes -> 256 PEs
    m.nm_tile = 16;
    m.fm_tile = 32;
    m.cbm_tile = 8;
    m.order = TraversalOrder::NFC;
    m.scheme = LutLoadScheme::CoarseGrain;
    m.cb_load_tile = 2;
    m.f_load_tile = 16;
    return m;
}

TEST(Simulator, IllegalMappingRejected)
{
    LutMapping m = mapping();
    m.ns_tile = 3;
    SimulatedLutCost sim = simulateLutMapping(upmemPlatform(), shape(), m);
    EXPECT_FALSE(sim.legal);
}

TEST(Simulator, CloseToAnalyticalModel)
{
    // The simulator is the "measured" reference; the closed-form model
    // should track it within a modest error (paper: avg 3.44%, max
    // 13.73% against real hardware).
    const auto platform = upmemPlatform();
    const SimulatedLutCost sim =
        simulateLutMapping(platform, shape(), mapping());
    const LutCostBreakdown model =
        evaluateLutMapping(platform, shape(), mapping());
    ASSERT_TRUE(sim.legal);
    ASSERT_TRUE(model.legal);
    const double err = std::abs(model.total() - sim.total_s) / sim.total_s;
    EXPECT_LT(err, 0.30);
}

TEST(Simulator, StreamBytesMatchModelForCoarse)
{
    const auto platform = upmemPlatform();
    const SimulatedLutCost sim =
        simulateLutMapping(platform, shape(), mapping());
    const LutCostBreakdown model =
        evaluateLutMapping(platform, shape(), mapping());
    // Same traffic accounting up to boundary effects.
    EXPECT_NEAR(sim.pe_stream_bytes / model.pe_stream_bytes, 1.0, 0.15);
}

TEST(Simulator, DmaSetupCostIncreasesLatency)
{
    const auto platform = upmemPlatform();
    SimulatorOptions cheap;
    cheap.dma_setup_s = 0.0;
    cheap.loop_overhead_s = 0.0;
    SimulatorOptions expensive;
    expensive.dma_setup_s = 5e-6;
    const double t_cheap =
        simulateLutMapping(platform, shape(), mapping(), cheap)
            .micro_kernel_s;
    const double t_exp =
        simulateLutMapping(platform, shape(), mapping(), expensive)
            .micro_kernel_s;
    EXPECT_GT(t_exp, t_cheap);
}

TEST(Simulator, TunedMappingSimulatesFast)
{
    const auto platform = upmemPlatform();
    AutoTuner tuner(platform);
    AutoTuneResult best = tuner.tune(shape());
    ASSERT_TRUE(best.found);
    const SimulatedLutCost best_sim =
        simulateLutMapping(platform, shape(), best.mapping);
    ASSERT_TRUE(best_sim.legal);

    // A deliberately bad mapping must simulate slower than the tuned one
    // (Figure 13's best-vs-worst gap).
    LutMapping bad = best.mapping;
    bad.ns_tile = shape().n;       // single group
    bad.fs_tile = shape().f;       // single lane -> one PE
    bad.nm_tile = 1;
    bad.fm_tile = 1;
    bad.cbm_tile = 1;
    bad.scheme = LutLoadScheme::FineGrain;
    bad.f_load_tile = 1;
    const SimulatedLutCost bad_sim =
        simulateLutMapping(platform, shape(), bad);
    ASSERT_TRUE(bad_sim.legal);
    EXPECT_GT(bad_sim.total_s, 2.0 * best_sim.total_s);
}

TEST(Simulator, StaticSchemeBulkLoadCounted)
{
    LutWorkloadShape s = shape();
    LutMapping m;
    m.ns_tile = 2048;
    m.fs_tile = 16; // LUT tile 128*16*16 = 32 KiB fits WRAM
    m.nm_tile = 32;
    m.fm_tile = 16;
    m.cbm_tile = 16;
    m.order = TraversalOrder::NCF;
    m.scheme = LutLoadScheme::Static;
    const SimulatedLutCost sim =
        simulateLutMapping(upmemPlatform(), s, m);
    ASSERT_TRUE(sim.legal);
    // Bulk LUT load streams 32 KiB in 2 KiB chunks -> >= 16 DMAs.
    EXPECT_GE(sim.dma_count, 16u);
}

} // namespace
} // namespace pimdl
