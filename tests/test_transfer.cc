/**
 * @file
 * Transfer-engine tests: burst coalescing over lowered plans (byte
 * conservation, dependency safety), scatter/gather layout transforms,
 * resident-LUT LRU placement (including a concurrent stress), the
 * double-buffered staging scheduler (bit-exactness vs the synchronous
 * baseline, per-burst fault draws), ManualClock-deterministic overlap
 * accounting through the distributed executor, the staged serving
 * input path, and the transaction backend's burst command stream.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "backend/transaction.h"
#include "common/clock.h"
#include "common/rng.h"
#include "host/host_model.h"
#include "lutnn/converter.h"
#include "nn/model_config.h"
#include "plan/lowering.h"
#include "runtime/lut_executor.h"
#include "runtime/serving_live.h"
#include "transfer/layout.h"
#include "transfer/resident.h"
#include "transfer/scheduler.h"
#include "transfer/transfer.h"

namespace pimdl {
namespace {

Plan
loweredUpmemPlan(const PimPlatformConfig &platform)
{
    LoweringOptions options;
    options.platform = &platform;
    return lowerTransformer(bertBase(), LutNnParams{4, 16},
                            ExecutionMode::PimDl, options);
}

double
planTransferBytes(const Plan &plan)
{
    double total = 0.0;
    for (const PlanNode &node : plan.nodes)
        if (node.kind == PlanOpKind::HostPimTransfer)
            total += node.transfer_bytes;
    return total;
}

// ---------------------------------------------------------------------
// Burst formation: coalescing correctness.
// ---------------------------------------------------------------------

TEST(TransferBursts, CoalescingConservesBytesAndRespectsDependencies)
{
    const PimPlatformConfig upmem = upmemPlatform();
    Plan plan = loweredUpmemPlan(upmem);
    const double plan_bytes = planTransferBytes(plan);

    const transfer::BurstPlan bursts =
        transfer::planTransferBursts(plan, upmem);

    // Byte conservation: burst formation never invents or drops payload.
    double burst_bytes = 0.0;
    for (const transfer::TransferBurst &b : bursts.bursts) {
        double slice_bytes = 0.0;
        for (const transfer::BurstSlice &s : b.slices)
            slice_bytes += s.bytes;
        EXPECT_DOUBLE_EQ(b.bytes, slice_bytes) << "burst " << b.id;
        burst_bytes += b.bytes;
    }
    EXPECT_DOUBLE_EQ(burst_bytes, plan_bytes);
    EXPECT_DOUBLE_EQ(bursts.total_bytes, plan_bytes);

    // Chain-dependent activation payloads are never merged; only static
    // LUT staging coalesces. UPMEM is an offload platform, so staging
    // bursts must exist and some must actually have merged.
    bool merged_staging = false;
    for (const transfer::TransferBurst &b : bursts.bursts) {
        if (!b.lut_staging) {
            EXPECT_EQ(b.pieces(), 1u)
                << "activation burst " << b.id << " merged across a "
                << "data dependency";
        } else {
            EXPECT_EQ(b.direction, TransferDirection::HostToPim);
            EXPECT_EQ(b.pattern, transfer::LinkPattern::Scatter);
            if (b.pieces() > 1)
                merged_staging = true;
        }
    }
    EXPECT_TRUE(merged_staging);
    EXPECT_GT(bursts.coalesced_bytes, 0.0);
    EXPECT_GT(bursts.merged_pieces, 0u);

    // Every transfer node is annotated with a live burst id.
    for (const PlanNode &node : plan.nodes) {
        if (node.kind != PlanOpKind::HostPimTransfer)
            continue;
        ASSERT_NE(node.burst_id, kNoBurstId) << "node " << node.id;
        ASSERT_LT(node.burst_id, bursts.bursts.size());
        const transfer::TransferBurst &b = bursts.bursts[node.burst_id];
        const bool listed =
            std::any_of(b.slices.begin(), b.slices.end(),
                        [&](const transfer::BurstSlice &s) {
                            return s.node_id == node.id;
                        });
        EXPECT_TRUE(listed) << "node " << node.id
                            << " annotated with a burst that does not "
                            << "carry it";
    }

    // The plan itself is untouched: node count, dependencies, and the
    // analytical transfer bytes are exactly the lowered ones.
    EXPECT_NO_THROW(plan.validate());
    EXPECT_DOUBLE_EQ(planTransferBytes(plan), plan_bytes);
}

TEST(TransferBursts, PolicyWindowAndSizeBoundMerging)
{
    const PimPlatformConfig upmem = upmemPlatform();

    transfer::TransferPolicy policy;
    policy.layer_window = 1;
    Plan plan = loweredUpmemPlan(upmem);
    const transfer::BurstPlan windowed =
        transfer::planTransferBursts(plan, upmem, policy);
    for (const transfer::TransferBurst &b : windowed.bursts)
        EXPECT_LT(b.last_layer, b.first_layer + policy.layer_window)
            << "burst " << b.id << " spans past its layer window";

    policy = transfer::TransferPolicy{};
    policy.max_burst_bytes = 1.0; // nothing fits next to anything
    Plan tiny = loweredUpmemPlan(upmem);
    const transfer::BurstPlan bounded =
        transfer::planTransferBursts(tiny, upmem, policy);
    for (const transfer::TransferBurst &b : bounded.bursts)
        EXPECT_EQ(b.pieces(), 1u)
            << "size bound must stop all merging";
    EXPECT_EQ(bounded.merged_pieces, 0u);

    transfer::TransferPolicy bad;
    bad.max_burst_bytes = 0.0;
    EXPECT_THROW(transfer::planTransferBursts(tiny, upmem, bad),
                 std::runtime_error);
}

TEST(TransferBursts, CoalescedPricingBeatsFlatBaseline)
{
    const PimPlatformConfig upmem = upmemPlatform();
    Plan plan = loweredUpmemPlan(upmem);
    const transfer::BurstPlan coalesced =
        transfer::planTransferBursts(plan, upmem);

    // Merged bursts pay one setup and ride a higher curve point, so the
    // engine pricing is strictly below the flat per-payload baseline.
    EXPECT_LT(coalesced.burstSeconds(upmem),
              coalesced.flatSeconds(upmem));

    // With coalescing off, every burst is one piece and the two
    // pricings collapse to the same number.
    transfer::TransferPolicy off;
    off.coalesce_lut_staging = false;
    Plan flat_plan = loweredUpmemPlan(upmem);
    const transfer::BurstPlan flat =
        transfer::planTransferBursts(flat_plan, upmem, off);
    for (const transfer::TransferBurst &b : flat.bursts)
        EXPECT_EQ(b.pieces(), 1u);
    EXPECT_DOUBLE_EQ(flat.burstSeconds(upmem), flat.flatSeconds(upmem));
    EXPECT_DOUBLE_EQ(flat.flatSeconds(upmem),
                     coalesced.flatSeconds(upmem))
        << "the flat baseline must not depend on burst formation";
}

// ---------------------------------------------------------------------
// Layout transforms: pure permutations.
// ---------------------------------------------------------------------

TEST(TransferLayout, ColumnTilePackUnpackIsIdentity)
{
    constexpr std::size_t kRows = 6, kCols = 12, kTile = 4, kElem = 2;
    std::vector<std::uint8_t> src(kRows * kCols * kElem);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 37 + 11);

    std::vector<std::uint8_t> packed(src.size(), 0);
    std::vector<std::uint8_t> round(src.size(), 0);
    transfer::packColumnTiles(src.data(), kRows, kCols, kTile, kElem,
                              packed.data());
    EXPECT_NE(packed, src) << "packing must actually permute";
    transfer::unpackColumnTiles(packed.data(), kRows, kCols, kTile,
                                kElem, round.data());
    EXPECT_EQ(round, src);

    // Lane l's tile is one contiguous block of all rows x tile columns.
    const std::size_t lane = 1;
    const std::uint8_t *tile =
        packed.data() + lane * kRows * kTile * kElem;
    for (std::size_t r = 0; r < kRows; ++r)
        for (std::size_t c = 0; c < kTile; ++c)
            for (std::size_t e = 0; e < kElem; ++e)
                EXPECT_EQ(tile[(r * kTile + c) * kElem + e],
                          src[(r * kCols + lane * kTile + c) * kElem +
                              e]);
}

TEST(TransferLayout, WaveRowsGatherGroupSlices)
{
    constexpr std::size_t kGroups = 3, kGroupRows = 5, kCols = 4;
    constexpr std::size_t kRow0 = 2, kWaveRows = 2, kElem = 2;
    std::vector<std::uint8_t> src(kGroups * kGroupRows * kCols * kElem);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 53 + 7);

    std::vector<std::uint8_t> staged(kGroups * kWaveRows * kCols * kElem,
                                     0);
    transfer::packWaveRows(src.data(), kGroups, kGroupRows, kRow0,
                           kWaveRows, kCols, kElem, staged.data());
    for (std::size_t g = 0; g < kGroups; ++g) {
        const std::uint8_t *block =
            staged.data() + g * kWaveRows * kCols * kElem;
        const std::uint8_t *rows =
            src.data() + (g * kGroupRows + kRow0) * kCols * kElem;
        EXPECT_EQ(std::memcmp(block, rows, kWaveRows * kCols * kElem), 0)
            << "group " << g;
    }
}

// ---------------------------------------------------------------------
// Resident-LUT placement.
// ---------------------------------------------------------------------

TEST(ResidentLut, LruEvictionUnderCapacityPressure)
{
    transfer::ResidentLutManager mgr(100.0);

    EXPECT_FALSE(mgr.touch(1, 40.0)); // miss, pin
    EXPECT_FALSE(mgr.touch(2, 40.0)); // miss, pin
    EXPECT_TRUE(mgr.touch(1, 40.0));  // hit refreshes 1's recency
    EXPECT_FALSE(mgr.touch(3, 40.0)); // evicts 2 (LRU), not 1

    EXPECT_TRUE(mgr.touch(1, 40.0));
    EXPECT_TRUE(mgr.touch(3, 40.0));
    EXPECT_FALSE(mgr.touch(2, 40.0)) << "2 must have been evicted";

    transfer::ResidentLutStats stats = mgr.stats();
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_GE(stats.evictions, 2u);
    EXPECT_LE(stats.resident_bytes, mgr.capacityBytes());
    EXPECT_EQ(stats.entries, 2u);

    // Oversized tables never pin (and never evict the working set,
    // which is {2, 3} after the eviction churn above).
    EXPECT_FALSE(mgr.touch(9, 1000.0));
    EXPECT_FALSE(mgr.touch(9, 1000.0)) << "oversized is always a miss";
    EXPECT_TRUE(mgr.touch(2, 40.0))
        << "an oversized miss must not evict pinned tables";
    EXPECT_TRUE(mgr.touch(3, 40.0));

    mgr.clear();
    stats = mgr.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_DOUBLE_EQ(stats.resident_bytes, 0.0);
    EXPECT_FALSE(mgr.touch(1, 40.0)) << "clear() unpins everything";

    EXPECT_THROW(transfer::ResidentLutManager(0.0), std::runtime_error);
    const PimPlatformConfig upmem = upmemPlatform();
    EXPECT_GT(transfer::residentLutCapacityBytes(upmem), 0.0);
    EXPECT_LT(transfer::residentLutCapacityBytes(upmem),
              static_cast<double>(upmem.num_pes) *
                  static_cast<double>(upmem.pe_local_mem_bytes));
}

TEST(ResidentLut, ConcurrentTouchStressKeepsAccountingConsistent)
{
    constexpr std::size_t kThreads = 8, kTouches = 2000;
    constexpr double kBytes = 64.0;
    // Capacity for half the key space: constant eviction churn.
    transfer::ResidentLutManager mgr(kBytes * 8);

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&mgr, t] {
            Rng rng(0xc0ffee + t);
            for (std::size_t i = 0; i < kTouches; ++i)
                mgr.touch(
                    static_cast<std::uint64_t>(rng.uniform() * 16.0),
                    kBytes);
        });
    }
    for (std::thread &th : threads)
        th.join();

    const transfer::ResidentLutStats stats = mgr.stats();
    EXPECT_EQ(stats.hits + stats.misses, kThreads * kTouches);
    EXPECT_LE(stats.resident_bytes, mgr.capacityBytes());
    EXPECT_LE(stats.entries, 8u);
    EXPECT_GT(stats.evictions, 0u);
}

// ---------------------------------------------------------------------
// Staging scheduler: double buffer and per-burst faults.
// ---------------------------------------------------------------------

transfer::StageRequest
patternRequest(std::size_t bytes, std::uint8_t tag, double modeled_s)
{
    transfer::StageRequest req;
    req.bytes = bytes;
    req.modeled_seconds = modeled_s;
    req.fill = [tag](std::uint8_t *dst, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = static_cast<std::uint8_t>(tag + i * 3);
    };
    return req;
}

TEST(TransferScheduler, DoubleBufferDeliversEveryBurstInOrder)
{
    for (const bool synchronous : {false, true}) {
        transfer::TransferScheduler::Options options;
        options.synchronous = synchronous;
        transfer::TransferScheduler scheduler(options);
        auto channel = scheduler.openChannel("test.channel");

        // More bursts than slots: the ticket ping-pong plus release()
        // back-pressure must still deliver each fill bit-exactly.
        constexpr std::size_t kBursts = 9, kBytes = 4096;
        std::size_t pending[2] = {0, 0};
        std::size_t in_flight = 0;
        for (std::size_t b = 0; b < kBursts; ++b) {
            const std::size_t ticket = channel->stage(patternRequest(
                kBytes, static_cast<std::uint8_t>(b), 1e-6));
            pending[ticket] = b;
            if (++in_flight < 2 && b + 1 < kBursts)
                continue; // keep both slots busy (the overlap window)
            const std::size_t done = (b + 1) - in_flight;
            const std::size_t done_ticket = done % 2;
            ASSERT_EQ(pending[done_ticket], done);
            const std::vector<std::uint8_t> &buf =
                channel->wait(done_ticket);
            ASSERT_EQ(buf.size(), kBytes);
            for (std::size_t i = 0; i < kBytes; ++i)
                ASSERT_EQ(buf[i],
                          static_cast<std::uint8_t>(done + i * 3))
                    << "burst " << done << " byte " << i
                    << (synchronous ? " (sync)" : " (threaded)");
            const transfer::StagedBurstReport report =
                channel->report(done_ticket);
            EXPECT_EQ(report.corrupt_retries, 0u);
            EXPECT_EQ(report.stalls, 0u);
            channel->release(done_ticket);
            --in_flight;
        }
        for (std::size_t done = kBursts - in_flight; done < kBursts;
             ++done) {
            channel->wait(done % 2);
            channel->release(done % 2);
        }

        const transfer::TransferSchedulerStats stats =
            scheduler.stats();
        EXPECT_EQ(stats.bursts_staged, kBursts);
        EXPECT_DOUBLE_EQ(stats.staged_bytes,
                         static_cast<double>(kBursts * kBytes));
    }
}

TEST(TransferScheduler, ChannelDestructionDrainsInFlightFills)
{
    transfer::TransferScheduler scheduler({});
    for (int round = 0; round < 4; ++round) {
        auto channel = scheduler.openChannel("test.abandon");
        channel->stage(patternRequest(1 << 16, 0x5a, 1e-6));
        channel->stage(patternRequest(1 << 16, 0xa5, 1e-6));
        // Drop the channel without wait()/release() — the failBatch /
        // drain path. The dtor must block until the transfer thread is
        // done with the slots, never crash or hang.
    }
    EXPECT_EQ(scheduler.stats().bursts_staged, 8u);
}

TEST(TransferScheduler, CorruptedBurstsAreRetriedToCleanDelivery)
{
    FaultConfig fc;
    fc.seed = 1234;
    fc.transfer_corrupt_rate = 1.0; // every attempt corrupts
    fc.stall_penalty_s = 500e-6;
    const FaultInjector faults(fc);

    ManualClock clock;
    transfer::TransferScheduler::Options options;
    options.clock = &clock;
    options.faults = &faults;
    options.retry.max_retries = 2;
    options.synchronous = true; // deterministic single-thread draws
    transfer::TransferScheduler scheduler(options);
    auto channel = scheduler.openChannel("test.faults");

    constexpr std::size_t kBytes = 512;
    const double modeled_s = 3e-6;
    const std::size_t ticket =
        channel->stage(patternRequest(kBytes, 0x11, modeled_s));
    const std::vector<std::uint8_t> &buf = channel->wait(ticket);
    ASSERT_EQ(buf.size(), kBytes);
    for (std::size_t i = 0; i < kBytes; ++i)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(0x11 + i * 3))
            << "delivered data must be clean after retries";

    const transfer::StagedBurstReport report = channel->report(ticket);
    // Rate 1.0 burns the whole retry budget, then the final clean
    // refill delivers: max_retries + 1 corrupt draws.
    EXPECT_EQ(report.corrupt_retries, options.retry.max_retries + 1);
    double expected = 0.0;
    for (std::size_t r = 0; r < report.corrupt_retries; ++r)
        expected += modeled_s + options.retry.backoffFor(r);
    expected += report.stalls * fc.stall_penalty_s;
    EXPECT_NEAR(report.added_seconds, expected, 1e-15)
        << "penalties are modeled seconds, not wall time";
    channel->release(ticket);

    EXPECT_DOUBLE_EQ(clock.now(), 0.0)
        << "fault penalties must never sleep the clock";
    EXPECT_EQ(scheduler.stats().corrupt_retries,
              report.corrupt_retries);
}

TEST(TransferScheduler, StallDrawsAreDeterministicPerSequence)
{
    FaultConfig fc;
    fc.seed = 99;
    fc.transfer_stall_rate = 0.5;
    const FaultInjector faults(fc);

    const auto stallPattern = [&faults](std::size_t bursts) {
        transfer::TransferScheduler::Options options;
        options.faults = &faults;
        options.synchronous = true;
        transfer::TransferScheduler scheduler(options);
        auto channel = scheduler.openChannel("test.stalls");
        std::vector<std::size_t> stalls;
        for (std::size_t b = 0; b < bursts; ++b) {
            const std::size_t ticket = channel->stage(
                patternRequest(64, static_cast<std::uint8_t>(b), 1e-6));
            channel->wait(ticket);
            stalls.push_back(channel->report(ticket).stalls);
            channel->release(ticket);
        }
        return stalls;
    };

    const std::vector<std::size_t> first = stallPattern(32);
    const std::vector<std::size_t> second = stallPattern(32);
    EXPECT_EQ(first, second)
        << "per-burst draws are keyed by global sequence: identical "
        << "schedules must see identical stalls";
    const std::size_t total =
        std::accumulate(first.begin(), first.end(), std::size_t{0});
    EXPECT_GT(total, 0u);
    EXPECT_LT(total, 32u) << "rate 0.5 must not stall every burst";
}

// ---------------------------------------------------------------------
// Distributed executor integration: bit-exactness and overlap.
// ---------------------------------------------------------------------

LutLayer
makeLayerNoBias(std::size_t h, std::size_t f, std::size_t v,
                std::size_t ct, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor w(h, f);
    w.fillGaussian(rng);
    Tensor calib(128, h);
    calib.fillGaussian(rng);
    ConvertOptions options;
    options.subvec_len = v;
    options.centroids = ct;
    options.quantize_int8 = true;
    return convertLinearLayer(w, {}, calib, options);
}

/** Largest divisor of @p total that is <= cap. */
std::size_t
divisorUpTo(std::size_t total, std::size_t cap)
{
    for (std::size_t d = std::min(cap, total); d >= 1; --d)
        if (total % d == 0)
            return d;
    return 1;
}

LutMapping
mappingFor(std::size_t n, std::size_t f, std::size_t groups,
           std::size_t lanes)
{
    LutMapping m;
    m.ns_tile = n / groups;
    m.fs_tile = f / lanes;
    m.nm_tile = divisorUpTo(m.ns_tile, 8);
    m.fm_tile = divisorUpTo(m.fs_tile, 8);
    m.cbm_tile = 8;
    m.scheme = LutLoadScheme::FineGrain;
    m.f_load_tile = 1;
    return m;
}

TEST(TransferExecutor, StagedExecutionIsBitExactAndDeterministic)
{
    const PimPlatformConfig upmem = upmemPlatform();
    LutLayer layer = makeLayerNoBias(16, 24, 2, 8, 70);
    Rng rng(71);
    Tensor input(32, 16);
    input.fillGaussian(rng);
    const IndexMatrix idx = layer.closestCentroidSearch(input);
    const LutMapping m = mappingFor(32, 24, 4, 2);

    const DistributedLutResult plain =
        runDistributedLut(upmem, layer, idx, m, false);

    const auto stagedRun = [&](bool synchronous) {
        ManualClock clock;
        transfer::TransferScheduler::Options options;
        options.clock = &clock;
        options.synchronous = synchronous;
        transfer::TransferScheduler scheduler(options);
        LutTransferContext ctx;
        ctx.scheduler = &scheduler;
        ctx.stage_waves = 4;
        return runDistributedLut(upmem, layer, idx, m, false, nullptr,
                                 {}, &ctx);
    };

    const DistributedLutResult threaded = stagedRun(false);
    const DistributedLutResult synchronous = stagedRun(true);

    // Bit-exactness: the wave-staged path computes from re-packed
    // buffers but must reproduce the direct path exactly.
    for (const DistributedLutResult *r : {&threaded, &synchronous}) {
        ASSERT_EQ(r->output.rows(), plain.output.rows());
        ASSERT_EQ(r->output.cols(), plain.output.cols());
        for (std::size_t row = 0; row < plain.output.rows(); ++row)
            for (std::size_t col = 0; col < plain.output.cols(); ++col)
                ASSERT_EQ(r->output(row, col), plain.output(row, col))
                    << "element " << row << "," << col;
    }

    // Overlap accounting is model-based, so threaded and synchronous
    // (and repeated) runs agree exactly — ManualClock never advances.
    EXPECT_GT(threaded.transfer.bursts, 0u);
    EXPECT_GT(threaded.transfer.staged_bytes, 0.0);
    EXPECT_GT(threaded.transfer.transfer_model_s, 0.0);
    EXPECT_GT(threaded.transfer.hidden_model_s, 0.0)
        << "waves past the first must hide transfer behind compute";
    EXPECT_EQ(threaded.transfer.bursts, synchronous.transfer.bursts);
    EXPECT_DOUBLE_EQ(threaded.transfer.staged_bytes,
                     synchronous.transfer.staged_bytes);
    EXPECT_DOUBLE_EQ(threaded.transfer.transfer_model_s,
                     synchronous.transfer.transfer_model_s);
    EXPECT_DOUBLE_EQ(threaded.transfer.hidden_model_s,
                     synchronous.transfer.hidden_model_s);
    const DistributedLutResult repeat = stagedRun(false);
    EXPECT_DOUBLE_EQ(repeat.transfer.hidden_model_s,
                     threaded.transfer.hidden_model_s);

    // Engine pricing: fault-free overlap can only help, and the
    // analytical baseline is untouched.
    EXPECT_DOUBLE_EQ(threaded.modelSeconds(), plain.modelSeconds());
    EXPECT_LT(threaded.engineSeconds(), threaded.modelSeconds());
    const double frac = threaded.transfer.overlapFrac();
    EXPECT_GT(frac, 0.0);
    EXPECT_LE(frac, 1.0);
}

TEST(TransferExecutor, ResidentLutSkipsRestagingOnRepeatedRuns)
{
    const PimPlatformConfig upmem = upmemPlatform();
    ASSERT_FALSE(upmem.lut_resident);
    LutLayer layer = makeLayerNoBias(16, 24, 2, 8, 72);
    Rng rng(73);
    Tensor input(32, 16);
    input.fillGaussian(rng);
    const IndexMatrix idx = layer.closestCentroidSearch(input);
    const LutMapping m = mappingFor(32, 24, 4, 2);

    transfer::TransferScheduler scheduler({});
    transfer::ResidentLutManager resident(
        transfer::residentLutCapacityBytes(upmem));
    LutTransferContext ctx;
    ctx.scheduler = &scheduler;
    ctx.resident = &resident;
    ctx.resident_key = 42;

    const DistributedLutResult cold =
        runDistributedLut(upmem, layer, idx, m, false, nullptr, {}, &ctx);
    EXPECT_EQ(cold.transfer.resident_misses, 1u);
    EXPECT_EQ(cold.transfer.resident_hits, 0u);
    EXPECT_DOUBLE_EQ(cold.transfer.saved_stage_s, 0.0);

    const DistributedLutResult warm =
        runDistributedLut(upmem, layer, idx, m, false, nullptr, {}, &ctx);
    EXPECT_EQ(warm.transfer.resident_hits, 1u);
    EXPECT_EQ(warm.transfer.resident_misses, 0u);
    EXPECT_DOUBLE_EQ(warm.transfer.saved_stage_s, cold.cost.t_sub_lut);
    EXPECT_LT(warm.engineSeconds(), cold.engineSeconds())
        << "a residency hit must be cheaper than the cold run";
    EXPECT_LT(warm.transfer.staged_bytes, cold.transfer.staged_bytes)
        << "the LUT scatter burst must be skipped on a hit";

    // Output is unaffected by residency either way.
    const DistributedLutResult plain =
        runDistributedLut(upmem, layer, idx, m, false);
    for (std::size_t row = 0; row < plain.output.rows(); ++row)
        for (std::size_t col = 0; col < plain.output.cols(); ++col)
            ASSERT_EQ(warm.output(row, col), plain.output(row, col));
}

// ---------------------------------------------------------------------
// Serving integration: staged batch input assembly.
// ---------------------------------------------------------------------

TEST(TransferServing, StagedInputAssemblyMatchesDirectForward)
{
    FunctionalTransformerConfig model_cfg; // 32 hidden, 2 layers
    FunctionalTransformer model(model_cfg);
    FunctionalBatchExecutor executor(model, LinearBackendKind::Dense);

    transfer::TransferScheduler stager({});
    LiveServingConfig cfg;
    cfg.max_batch = 4;
    cfg.max_wait_s = 5e-3;
    cfg.input_stager = &stager;

    constexpr std::size_t kSeq = 4;
    constexpr std::size_t kRequests = 7; // crosses a batch boundary
    std::vector<Tensor> inputs;
    std::vector<std::future<LiveRequestResult>> futures;
    {
        LiveServingRuntime runtime(cfg, executor);
        for (std::size_t i = 0; i < kRequests; ++i) {
            Tensor t(kSeq, model_cfg.hidden);
            Rng rng(7 * i + 1);
            for (std::size_t r = 0; r < kSeq; ++r)
                for (std::size_t c = 0; c < model_cfg.hidden; ++c)
                    t(r, c) = rng.uniform() - 0.5f;
            inputs.push_back(t);
            auto f = runtime.submit(inputs.back());
            ASSERT_TRUE(f.has_value());
            futures.push_back(std::move(*f));
        }
        runtime.drain();
    }

    for (std::size_t i = 0; i < kRequests; ++i) {
        const LiveRequestResult r = futures[i].get();
        ASSERT_EQ(r.status, LiveRequestStatus::Completed);
        const Tensor direct =
            model.forward(inputs[i], kSeq, LinearBackendKind::Dense);
        ASSERT_EQ(r.output.rows(), direct.rows());
        ASSERT_EQ(r.output.cols(), direct.cols());
        for (std::size_t row = 0; row < direct.rows(); ++row)
            for (std::size_t col = 0; col < direct.cols(); ++col)
                ASSERT_EQ(r.output(row, col), direct(row, col))
                    << "staged batch assembly must be bit-equal to "
                       "inline assembly (request "
                    << i << ")";
    }

    EXPECT_GT(stager.stats().bursts_staged, 0u)
        << "dispatch must actually route through the stager";
}

// ---------------------------------------------------------------------
// Transaction backend: burst command streams.
// ---------------------------------------------------------------------

TEST(TransferTxn, BurstCommandStreamPricesTheCoalescingWin)
{
    const TransactionBackend backend(upmemPlatform(), xeon4210Dual(),
                                     {});
    const PimPlatformConfig &upmem = backend.platform();

    const double kBytes = 256.0 * 1024;
    const TxnNodeReport small = backend.simulateTransferBurst(
        TransferDirection::HostToPim, true, kBytes);
    const TxnNodeReport big = backend.simulateTransferBurst(
        TransferDirection::HostToPim, true, 2.0 * kBytes);

    EXPECT_GT(small.commands_generated, 1u);
    EXPECT_EQ(small.commands_completed, small.commands_generated);
    EXPECT_GE(small.seconds, upmem.link_setup_latency_s);
    EXPECT_GT(big.seconds, small.seconds);
    // One merged burst beats two flat halves: one setup saved plus the
    // higher curve point.
    EXPECT_LT(big.seconds, 2.0 * small.seconds);

    // Direction/staging select the command kind and curve.
    EXPECT_GT(small.linkKindSeconds(TxnCommandKind::Scatter), 0.0);
    const TxnNodeReport bcast = backend.simulateTransferBurst(
        TransferDirection::HostToPim, false, kBytes);
    EXPECT_GT(bcast.linkKindSeconds(TxnCommandKind::Broadcast), 0.0);
    EXPECT_DOUBLE_EQ(bcast.linkKindSeconds(TxnCommandKind::Scatter),
                     0.0);
    const TxnNodeReport gather = backend.simulateTransferBurst(
        TransferDirection::PimToHost, false, kBytes);
    EXPECT_GT(gather.linkKindSeconds(TxnCommandKind::Gather), 0.0);

    // Empty bursts still pay the setup command, nothing else.
    const TxnNodeReport empty = backend.simulateTransferBurst(
        TransferDirection::HostToPim, true, 0.0);
    EXPECT_EQ(empty.commands_generated, 1u);
    EXPECT_GE(empty.seconds, upmem.link_setup_latency_s);
}

} // namespace
} // namespace pimdl
