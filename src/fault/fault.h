/**
 * @file
 * Deterministic, seed-driven fault injection for the simulated DRAM-PIM
 * substrate.
 *
 * Real commodity PIM deployments are not fault-free: the UPMEM
 * microbenchmarking literature (Gomez-Luna et al., cited as [33] in the
 * paper) documents per-DPU variability, disabled DPUs, and transfer
 * errors the SDK must mask. This module makes those events first-class
 * simulation inputs, the way DRAMsim3-style simulators treat refresh
 * and disturbance: an event taxonomy (per-PE hard failures, transient
 * PE crashes, resident-LUT bit flips, host<->PIM transfer corruption
 * and stalls), each with a configurable rate.
 *
 * Determinism contract: every draw is a pure counter-based hash of
 * (seed, event stream, execution epoch, PE id, attempt) — no shared
 * mutable RNG state — so the fault sequence for a given seed is
 * bit-reproducible regardless of how parallelFor interleaves the
 * simulated PEs across worker threads.
 */

#ifndef PIMDL_FAULT_FAULT_H
#define PIMDL_FAULT_FAULT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <set>

#include "common/thread_annotations.h"

namespace pimdl {

/** The injectable fault event taxonomy. */
enum class FaultEventKind
{
    /** PE permanently dead for the injector's lifetime. */
    PeHardFail,
    /** One kernel attempt on a PE produces nothing. */
    PeTransient,
    /** A resident LUT tile in MRAM/WRAM silently corrupts. */
    LutBitFlip,
    /** A host<->PIM transfer delivers corrupted bytes. */
    TransferCorrupt,
    /** A host<->PIM transfer stalls for a fixed penalty. */
    TransferStall,
};

/** Human-readable event name. */
const char *faultEventKindName(FaultEventKind kind);

/** Rates and penalties of the injectable fault events. */
struct FaultConfig
{
    /** Root of every deterministic draw. */
    std::uint64_t seed = 0x5eedfa17ULL;

    /** Per-PE probability of being permanently dead. */
    double pe_hard_fail_rate = 0.0;
    /** Per kernel-attempt probability a PE crashes transiently. */
    double pe_transient_rate = 0.0;
    /** Per kernel-attempt probability a resident LUT tile corrupts. */
    double lut_bitflip_rate = 0.0;
    /** Per kernel-attempt probability the output transfer corrupts. */
    double transfer_corrupt_rate = 0.0;
    /** Per kernel-attempt probability the transfer stalls. */
    double transfer_stall_rate = 0.0;

    /** Modeled latency added by one stall event, seconds. */
    double stall_penalty_s = 200e-6;

    /** True when any event can fire. */
    bool anyRateSet() const
    {
        return pe_hard_fail_rate > 0.0 || pe_transient_rate > 0.0 ||
               lut_bitflip_rate > 0.0 || transfer_corrupt_rate > 0.0 ||
               transfer_stall_rate > 0.0;
    }

    /** Throws std::runtime_error on rates outside [0, 1] etc. */
    void validate() const;
};

/**
 * Capped exponential backoff shared by every retry ladder in the
 * stack (PE re-execution, serving batch retries): base * 2^retry,
 * saturating at @p cap_s.
 */
double cappedBackoff(double base_s, double cap_s, std::size_t retry);

/**
 * Draw stream of the serving layer's per-batch fault outcomes. Shared
 * by the analytical serving simulator and the live serving runtime so
 * a fixed fault profile injects the same batch-indexed fault sequence
 * into both — a precondition for cross-validating their goodput.
 */
inline constexpr std::uint64_t kServingBatchFaultStream = 101;

/** Capped exponential backoff for retried kernel attempts. */
struct RetryPolicy
{
    /** Re-executions allowed per tile before escalation. */
    std::size_t max_retries = 3;
    /** Backoff before the first retry, seconds. */
    double backoff_base_s = 50e-6;
    /** Backoff ceiling, seconds. */
    double backoff_cap_s = 2e-3;

    /** Backoff before retry number @p retry (0-based), seconds. */
    double backoffFor(std::size_t retry) const
    {
        return cappedBackoff(backoff_base_s, backoff_cap_s, retry);
    }

    /** Throws std::runtime_error on negative/NaN parameters. */
    void validate() const;
};

/**
 * Outcome accounting of one fault-aware execution. All counts are
 * deterministic for a fixed injector seed.
 */
struct FaultReport
{
    /** PEs in the mapping's pool that were permanently dead. */
    std::size_t hard_failed_pes = 0;
    std::size_t transient_crashes = 0;
    /** Transfer corruptions caught by output-tile checksums. */
    std::size_t checksum_mismatches = 0;
    /** Resident-LUT corruptions caught by the tile CRC scrub. */
    std::size_t lut_bitflips = 0;
    std::size_t stalls = 0;
    /** Kernel attempts re-executed after a detected fault. */
    std::size_t retries = 0;
    /** Tiles recomputed away from their original owner PE. */
    std::size_t tiles_remapped = 0;
    /** Serial rounds the degraded schedule needed (0 = full strength). */
    std::size_t degraded_waves = 0;
    /** True when the op abandoned the PIM and ran on the host. */
    bool host_fallback = false;
    /** Stall/retry/remap seconds added to the analytical latency. */
    double added_latency_s = 0.0;

    bool
    faultFree() const
    {
        return hard_failed_pes == 0 && transient_crashes == 0 &&
               checksum_mismatches == 0 && lut_bitflips == 0 &&
               stalls == 0 && retries == 0 && tiles_remapped == 0 &&
               !host_fallback;
    }
};

/**
 * Uniform [0, 1) draw from a stateless counter-based hash (splitmix64
 * finalizer over the keys). Exposed so other layers (the serving
 * simulator's per-batch outcomes) share the same determinism contract.
 */
double faultHashUniform(std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t a, std::uint64_t b);

/** FNV-1a checksum of a byte range (the simulated output-tile CRC). */
std::uint64_t faultChecksum(const void *data, std::size_t bytes);

/**
 * Seed-driven fault oracle. All query methods are const and pure in
 * their arguments, so concurrent simulated PEs may query freely; the
 * only mutable state is the execution-epoch counter that distinguishes
 * consecutive kernel launches.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig config);

    const FaultConfig &config() const { return config_; }

    /** Permanently dead PE (rate draw or explicit kill)? */
    bool peHardFailed(std::size_t pe) const PIMDL_EXCLUDES(forced_mu_);

    /** Transient crash of @p pe on this (epoch, attempt)? */
    bool transientCrash(std::uint64_t epoch, std::size_t pe,
                        std::size_t attempt) const;

    /** Resident-LUT corruption for @p pe on this (epoch, attempt)? */
    bool lutBitFlip(std::uint64_t epoch, std::size_t pe,
                    std::size_t attempt) const;

    /** Output-transfer corruption for @p pe on this (epoch, attempt)? */
    bool transferCorrupt(std::uint64_t epoch, std::size_t pe,
                         std::size_t attempt) const;

    /** Transfer stall for @p pe on this (epoch, attempt)? */
    bool transferStall(std::uint64_t epoch, std::size_t pe,
                       std::size_t attempt) const;

    /** Deterministic corruption target in [0, slots). */
    std::size_t corruptionTarget(std::uint64_t epoch, std::size_t pe,
                                 std::size_t attempt,
                                 std::size_t slots) const;

    /** Marks a PE permanently dead (tests, operator drain). */
    void forceFailPe(std::size_t pe) PIMDL_EXCLUDES(forced_mu_);

    /** Distinguishes consecutive kernel launches (thread-safe). */
    std::uint64_t nextEpoch() const;

  private:
    FaultConfig config_;
    /** Guards forced_failed_: operator drains (forceFailPe) may race
     * concurrent PE-liveness queries from parallelFor workers. */
    mutable Mutex forced_mu_{"fault.forced_pes"};
    std::set<std::size_t> forced_failed_ PIMDL_GUARDED_BY(forced_mu_);
    mutable std::atomic<std::uint64_t> epoch_{0};
};

} // namespace pimdl

#endif // PIMDL_FAULT_FAULT_H
