#include "kmeans.h"

#include <cmath>
#include <limits>

namespace pimdl {

namespace {

double
squaredDistance(const float *a, const float *b, std::size_t dim)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        sum += d * d;
    }
    return sum;
}

/** k-means++ seeding: D^2-weighted sampling of initial centroids. */
Tensor
seedCentroids(const Tensor &samples, std::size_t k, Rng &rng)
{
    const std::size_t n = samples.rows();
    const std::size_t dim = samples.cols();
    Tensor centroids(k, dim);

    std::size_t first = rng.index(n);
    for (std::size_t d = 0; d < dim; ++d)
        centroids(0, d) = samples(first, d);

    std::vector<double> dist2(n, std::numeric_limits<double>::max());
    for (std::size_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = squaredDistance(samples.rowPtr(i),
                                             centroids.rowPtr(c - 1), dim);
            dist2[i] = std::min(dist2[i], d);
            total += dist2[i];
        }
        std::size_t chosen = 0;
        if (total > 0.0) {
            double target = rng.uniform(0.0f, 1.0f) * total;
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                acc += dist2[i];
                if (acc >= target) {
                    chosen = i;
                    break;
                }
            }
        } else {
            chosen = rng.index(n);
        }
        for (std::size_t d = 0; d < dim; ++d)
            centroids(c, d) = samples(chosen, d);
    }
    return centroids;
}

} // namespace

std::size_t
nearestCentroid(const float *v, const Tensor &centroids)
{
    std::size_t best = 0;
    double best_dist = squaredDistance(v, centroids.rowPtr(0),
                                       centroids.cols());
    for (std::size_t c = 1; c < centroids.rows(); ++c) {
        const double d = squaredDistance(v, centroids.rowPtr(c),
                                         centroids.cols());
        if (d < best_dist) {
            best_dist = d;
            best = c;
        }
    }
    return best;
}

KMeansResult
kmeans(const Tensor &samples, const KMeansOptions &options)
{
    PIMDL_REQUIRE(samples.rows() > 0, "kmeans needs samples");
    PIMDL_REQUIRE(options.clusters > 0, "kmeans needs clusters");
    PIMDL_REQUIRE(samples.rows() >= options.clusters,
                  "more clusters than samples");

    const std::size_t n = samples.rows();
    const std::size_t dim = samples.cols();
    const std::size_t k = options.clusters;

    Rng rng(options.seed);
    KMeansResult result;
    result.centroids = seedCentroids(samples, k, rng);
    result.assignments.assign(n, 0);

    std::vector<double> sums(k * dim);
    std::vector<std::size_t> counts(k);

    for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
        result.iterations = iter + 1;

        // Assignment step.
        result.inertia = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = nearestCentroid(samples.rowPtr(i),
                                                  result.centroids);
            result.assignments[i] = c;
            result.inertia += squaredDistance(samples.rowPtr(i),
                                              result.centroids.rowPtr(c),
                                              dim);
        }

        // Update step.
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = result.assignments[i];
            counts[c]++;
            const float *row = samples.rowPtr(i);
            for (std::size_t d = 0; d < dim; ++d)
                sums[c * dim + d] += row[d];
        }

        double movement = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed the empty cluster with the worst-fitting sample.
                std::size_t worst = 0;
                double worst_dist = -1.0;
                for (std::size_t i = 0; i < n; ++i) {
                    const double d = squaredDistance(
                        samples.rowPtr(i),
                        result.centroids.rowPtr(result.assignments[i]), dim);
                    if (d > worst_dist) {
                        worst_dist = d;
                        worst = i;
                    }
                }
                for (std::size_t d = 0; d < dim; ++d)
                    result.centroids(c, d) = samples(worst, d);
                movement += worst_dist;
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d) {
                const float updated = static_cast<float>(
                    sums[c * dim + d] / counts[c]);
                const float delta = updated - result.centroids(c, d);
                movement += static_cast<double>(delta) * delta;
                result.centroids(c, d) = updated;
            }
        }
        if (movement < options.tolerance)
            break;
    }
    return result;
}

} // namespace pimdl
