/** @file Batched-serving simulator tests. */

#include <gtest/gtest.h>

#include "runtime/serving.h"

namespace pimdl {
namespace {

class ServingTest : public ::testing::Test
{
  protected:
    ServingTest()
        : engine_(upmemPlatform(), xeon4210Dual()),
          model_(customTransformer("serve-test", 256, 2, 128, 1)),
          sim_(engine_, model_, LutNnParams{4, 16})
    {}

    PimDlEngine engine_;
    TransformerConfig model_;
    ServingSimulator sim_;
};

TEST_F(ServingTest, ConservesRequests)
{
    ServingConfig cfg;
    cfg.arrival_rate = 20.0;
    cfg.max_batch = 8;
    cfg.max_wait_s = 0.2;
    cfg.horizon_s = 60.0;
    const ServingStats stats = sim_.simulate(cfg);
    EXPECT_GT(stats.requests, 0u);
    EXPECT_GT(stats.batches, 0u);
    // throughput * span ~ completed requests = all requests.
    EXPECT_GT(stats.throughput_rps, 0.0);
    EXPECT_LE(stats.mean_batch_size, 8.0);
    EXPECT_GE(stats.mean_batch_size, 1.0);
}

TEST_F(ServingTest, DeterministicForSeed)
{
    ServingConfig cfg;
    cfg.horizon_s = 30.0;
    const ServingStats a = sim_.simulate(cfg);
    const ServingStats b = sim_.simulate(cfg);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
}

TEST_F(ServingTest, PercentilesAreOrdered)
{
    ServingConfig cfg;
    cfg.arrival_rate = 30.0;
    cfg.max_batch = 16;
    cfg.horizon_s = 60.0;
    const ServingStats stats = sim_.simulate(cfg);
    EXPECT_LE(stats.p50_latency_s, stats.p95_latency_s);
    EXPECT_LE(stats.p95_latency_s, stats.p99_latency_s);
    EXPECT_GT(stats.mean_latency_s, 0.0);
    EXPECT_GE(stats.utilization, 0.0);
    EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

TEST_F(ServingTest, HigherLoadRaisesBatchSizes)
{
    ServingConfig low;
    low.arrival_rate = 2.0;
    low.max_batch = 32;
    low.max_wait_s = 0.05;
    low.horizon_s = 60.0;
    ServingConfig high = low;
    high.arrival_rate = 200.0;
    const ServingStats a = sim_.simulate(low);
    const ServingStats b = sim_.simulate(high);
    EXPECT_GT(b.mean_batch_size, a.mean_batch_size);
}

TEST_F(ServingTest, LongerWaitDeadlineGrowsBatches)
{
    ServingConfig eager;
    eager.arrival_rate = 20.0;
    eager.max_batch = 32;
    eager.max_wait_s = 0.01;
    eager.horizon_s = 60.0;
    ServingConfig patient = eager;
    patient.max_wait_s = 1.0;
    const ServingStats a = sim_.simulate(eager);
    const ServingStats b = sim_.simulate(patient);
    EXPECT_GE(b.mean_batch_size, a.mean_batch_size);
}

TEST_F(ServingTest, BatchLatencyMemoizedAndMonotone)
{
    const double b1 = sim_.batchLatency(1, SchedulePolicy::Sequential);
    const double b8 = sim_.batchLatency(8, SchedulePolicy::Sequential);
    EXPECT_GT(b8, b1);
    // Second query hits the cache (same value).
    EXPECT_DOUBLE_EQ(sim_.batchLatency(8, SchedulePolicy::Sequential),
                     b8);
}

TEST_F(ServingTest, BatchLatencyKeyedOnSchedulerPolicy)
{
    // The memo must not alias different policies for the same batch.
    const double seq = sim_.batchLatency(4, SchedulePolicy::Sequential);
    const double pipe = sim_.batchLatency(4, SchedulePolicy::Pipelined);
    const double over = sim_.batchLatency(4, SchedulePolicy::Overlap);
    EXPECT_LT(pipe, seq);
    EXPECT_LE(over, seq + 1e-12);
    // Repeat queries return the cached values bit-for-bit.
    EXPECT_DOUBLE_EQ(sim_.batchLatency(4, SchedulePolicy::Sequential),
                     seq);
    EXPECT_DOUBLE_EQ(sim_.batchLatency(4, SchedulePolicy::Pipelined),
                     pipe);
    EXPECT_DOUBLE_EQ(sim_.batchLatency(4, SchedulePolicy::Overlap),
                     over);
}

TEST_F(ServingTest, PipelinedServesFaster)
{
    ServingConfig cfg;
    cfg.arrival_rate = 50.0;
    cfg.max_batch = 16;
    cfg.horizon_s = 60.0;
    const ServingStats seq = sim_.simulate(cfg);
    cfg.policy = SchedulePolicy::Pipelined;
    const ServingStats pipe = sim_.simulate(cfg);
    EXPECT_LE(pipe.mean_latency_s, seq.mean_latency_s + 1e-9);
}

TEST_F(ServingTest, RejectsBadConfig)
{
    ServingConfig cfg;
    cfg.arrival_rate = 0.0;
    EXPECT_THROW(sim_.simulate(cfg), std::runtime_error);
    cfg.arrival_rate = 1.0;
    cfg.max_batch = 0;
    EXPECT_THROW(sim_.simulate(cfg), std::runtime_error);
}

} // namespace
} // namespace pimdl
