#include "resident.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace pimdl {
namespace transfer {

ResidentLutManager::ResidentLutManager(double capacity_bytes)
    : capacity_bytes_(capacity_bytes)
{
    if (!(capacity_bytes > 0.0))
        throw std::runtime_error(
            "ResidentLutManager capacity must be positive");
}

bool
ResidentLutManager::touch(std::uint64_t key, double bytes)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    static obs::Counter &c_hits = reg.counter("transfer.resident_hits");
    static obs::Counter &c_misses =
        reg.counter("transfer.resident_misses");
    static obs::Counter &c_evictions =
        reg.counter("transfer.evictions");
    static obs::Gauge &g_bytes = reg.gauge("transfer.resident_bytes");

    bool hit = false;
    std::uint64_t evicted = 0;
    double resident = 0.0;
    {
        MutexLock lock(mu_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            hit = true;
            ++stats_.hits;
            lru_.splice(lru_.begin(), lru_, it->second);
        } else {
            ++stats_.misses;
            if (bytes <= capacity_bytes_) {
                // Evict from the LRU tail until the new table fits.
                while (stats_.resident_bytes + bytes >
                       capacity_bytes_) {
                    const Entry &victim = lru_.back();
                    stats_.resident_bytes -= victim.bytes;
                    index_.erase(victim.key);
                    lru_.pop_back();
                    ++stats_.evictions;
                    ++evicted;
                }
                lru_.push_front({key, bytes});
                index_[key] = lru_.begin();
                stats_.resident_bytes += bytes;
            }
            // else: oversized table, never pinned.
        }
        stats_.entries = lru_.size();
        resident = stats_.resident_bytes;
    }
    (hit ? c_hits : c_misses).add();
    if (evicted > 0)
        c_evictions.add(evicted);
    g_bytes.set(resident);
    return hit;
}

void
ResidentLutManager::clear()
{
    MutexLock lock(mu_);
    lru_.clear();
    index_.clear();
    stats_.resident_bytes = 0.0;
    stats_.entries = 0;
}

ResidentLutStats
ResidentLutManager::stats() const
{
    MutexLock lock(mu_);
    return stats_;
}

double
residentLutCapacityBytes(const PimPlatformConfig &platform,
                         double fraction)
{
    return static_cast<double>(platform.num_pes) *
           static_cast<double>(platform.pe_local_mem_bytes) * fraction;
}

} // namespace transfer
} // namespace pimdl
