file(REMOVE_RECURSE
  "CMakeFiles/pimdl_lutnn.dir/codebook.cc.o"
  "CMakeFiles/pimdl_lutnn.dir/codebook.cc.o.d"
  "CMakeFiles/pimdl_lutnn.dir/converter.cc.o"
  "CMakeFiles/pimdl_lutnn.dir/converter.cc.o.d"
  "CMakeFiles/pimdl_lutnn.dir/elutnn.cc.o"
  "CMakeFiles/pimdl_lutnn.dir/elutnn.cc.o.d"
  "CMakeFiles/pimdl_lutnn.dir/flops.cc.o"
  "CMakeFiles/pimdl_lutnn.dir/flops.cc.o.d"
  "CMakeFiles/pimdl_lutnn.dir/kmeans.cc.o"
  "CMakeFiles/pimdl_lutnn.dir/kmeans.cc.o.d"
  "CMakeFiles/pimdl_lutnn.dir/lut_layer.cc.o"
  "CMakeFiles/pimdl_lutnn.dir/lut_layer.cc.o.d"
  "CMakeFiles/pimdl_lutnn.dir/serialize.cc.o"
  "CMakeFiles/pimdl_lutnn.dir/serialize.cc.o.d"
  "libpimdl_lutnn.a"
  "libpimdl_lutnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimdl_lutnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
