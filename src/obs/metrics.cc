#include "metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "json.h"

namespace pimdl {
namespace obs {

Histogram::Histogram(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    samples_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
Histogram::record(double sample)
{
    MutexLock guard(mutex_);
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    sum_ += sample;
    if (samples_.size() < capacity_) {
        samples_.push_back(sample);
    } else {
        // Keyed reservoir: a cheap deterministic hash of the arrival
        // index spreads replacements across the buffer, so the retained
        // set stays a representative mix of old and new samples.
        const std::uint64_t slot = (count_ * 2654435761ULL) % capacity_;
        samples_[static_cast<std::size_t>(slot)] = sample;
    }
    ++count_;
}

double
Histogram::percentileLocked(std::vector<double> sorted, double p) const
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    p = std::min(1.0, std::max(0.0, p));
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double
Histogram::percentile(double p) const
{
    MutexLock guard(mutex_);
    return percentileLocked(samples_, p);
}

HistogramSnapshot
Histogram::snapshot() const
{
    MutexLock guard(mutex_);
    HistogramSnapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.mean = count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&](double p) {
        if (sorted.empty())
            return 0.0;
        const double rank = p * static_cast<double>(sorted.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
    };
    s.p50 = pct(0.50);
    s.p95 = pct(0.95);
    s.p99 = pct(0.99);
    return s;
}

std::uint64_t
Histogram::count() const
{
    MutexLock guard(mutex_);
    return count_;
}

void
Histogram::reset()
{
    MutexLock guard(mutex_);
    samples_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

namespace {

/** One name must keep one metric kind for the process lifetime. */
void
requireUnclaimed(const std::map<std::string, std::unique_ptr<Counter>> &a,
                 const std::map<std::string, std::unique_ptr<Gauge>> &b,
                 const std::map<std::string, std::unique_ptr<Histogram>> &c,
                 const std::string &name)
{
    if (a.count(name) || b.count(name) || c.count(name))
        throw std::logic_error("metric '" + name +
                               "' already registered with another kind");
}

} // namespace

Counter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock guard(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        requireUnclaimed({}, gauges_, histograms_, name);
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock guard(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        requireUnclaimed(counters_, {}, histograms_, name);
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    MutexLock guard(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        requireUnclaimed(counters_, gauges_, {}, name);
        it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const
{
    MutexLock guard(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c->value());
    return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gauges() const
{
    MutexLock guard(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.emplace_back(name, g->value());
    return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histograms() const
{
    MutexLock guard(mutex_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        out.emplace_back(name, h->snapshot());
    return out;
}

void
MetricsRegistry::reset()
{
    MutexLock guard(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

std::string
MetricsRegistry::toJson() const
{
    const auto cs = counters();
    const auto gs = gauges();
    const auto hs = histograms();

    std::ostringstream out;
    out << "{\"counters\":{";
    for (std::size_t i = 0; i < cs.size(); ++i) {
        if (i)
            out << ",";
        out << jsonString(cs[i].first) << ":" << cs[i].second;
    }
    out << "},\"gauges\":{";
    for (std::size_t i = 0; i < gs.size(); ++i) {
        if (i)
            out << ",";
        out << jsonString(gs[i].first) << ":" << jsonNumber(gs[i].second);
    }
    out << "},\"histograms\":{";
    for (std::size_t i = 0; i < hs.size(); ++i) {
        if (i)
            out << ",";
        const HistogramSnapshot &s = hs[i].second;
        out << jsonString(hs[i].first) << ":{"
            << "\"count\":" << s.count << ",\"sum\":" << jsonNumber(s.sum)
            << ",\"min\":" << jsonNumber(s.min)
            << ",\"max\":" << jsonNumber(s.max)
            << ",\"mean\":" << jsonNumber(s.mean)
            << ",\"p50\":" << jsonNumber(s.p50)
            << ",\"p95\":" << jsonNumber(s.p95)
            << ",\"p99\":" << jsonNumber(s.p99) << "}";
    }
    out << "}}";
    return out.str();
}

} // namespace obs
} // namespace pimdl
