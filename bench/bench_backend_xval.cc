/**
 * @file
 * Backend cross-validation driver: runs the same workloads through the
 * analytical timing backend and the transaction-level simulator and
 * reports per-phase relative errors (the model-vs-model twin of the
 * paper's 3.44% model-vs-hardware validation, Section 6.2).
 *
 * Sections:
 *   1. Per-phase error table: BERT-base (always; BERT-large and
 *      ViT-huge when not --smoke) end-to-end PIM-DL estimates under
 *      both backends, with CCS/LUT/attention/other/total relative
 *      errors. The mean error is CI-gated (< 10%, the committed bound
 *      in scripts/check_metrics.py).
 *   2. Arbitration sweep: transaction-simulated BERT-base latency as
 *      co-located host DRAM traffic intensity rises; latency must be
 *      monotone non-decreasing in the intensity.
 *   3. Serving smoke under both backends (threads the backend through
 *      BatchLatencyFn and populates the serving.* metrics schema).
 *
 * `--json <path>` additionally writes the error table in
 * pimdl.bench.backend.v1 JSON. Exits non-zero when the error bound or
 * the sweep monotonicity is violated.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "runtime/serving.h"

using namespace pimdl;
using namespace pimdl::bench;

namespace {

/** Committed analytical-vs-transaction error bound (CI-gated). */
constexpr double kErrorBound = 0.10;

/** Host-traffic intensities the arbitration sweep visits. */
constexpr double kSweepIntensities[] = {0.0, 0.2, 0.4, 0.6, 0.8};

/** Relative error |a - b| / a for a > 0 (0 when both phases vanish). */
double
relErr(double analytical, double transaction)
{
    if (analytical <= 0.0)
        return transaction > 0.0 ? 1.0 : 0.0;
    return std::abs(transaction - analytical) / analytical;
}

/** One model's cross-validation row. */
struct XvalEntry
{
    std::string model;
    double analytical_s = 0.0;
    double transaction_s = 0.0;
    double err_ccs = 0.0;
    double err_lut = 0.0;
    double err_attention = 0.0;
    double err_other = 0.0;
    double err_total = 0.0;

    double meanErr() const
    {
        return (err_ccs + err_lut + err_attention + err_other +
                err_total) /
               5.0;
    }
};

/** One arbitration-sweep point. */
struct SweepEntry
{
    double intensity = 0.0;
    double total_s = 0.0;
    double slowdown = 1.0;
};

void
writeBackendJson(const std::string &path,
                 const std::vector<XvalEntry> &entries,
                 const std::vector<SweepEntry> &sweep, double mean_err,
                 double max_err)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        std::exit(1);
    }
    out << "{\n  \"schema\": \"pimdl.bench.backend.v1\",\n"
        << "  \"bound\": " << obs::jsonNumber(kErrorBound) << ",\n"
        << "  \"mean_rel_err\": " << obs::jsonNumber(mean_err) << ",\n"
        << "  \"max_rel_err\": " << obs::jsonNumber(max_err) << ",\n"
        << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const XvalEntry &e = entries[i];
        out << "    {\"model\": " << obs::jsonString(e.model)
            << ", \"analytical_s\": " << obs::jsonNumber(e.analytical_s)
            << ", \"transaction_s\": " << obs::jsonNumber(e.transaction_s)
            << ", \"err_ccs\": " << obs::jsonNumber(e.err_ccs)
            << ", \"err_lut\": " << obs::jsonNumber(e.err_lut)
            << ", \"err_attention\": " << obs::jsonNumber(e.err_attention)
            << ", \"err_other\": " << obs::jsonNumber(e.err_other)
            << ", \"err_total\": " << obs::jsonNumber(e.err_total) << "}"
            << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"arbitration_sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        out << "    {\"host_traffic_intensity\": "
            << obs::jsonNumber(sweep[i].intensity)
            << ", \"total_s\": " << obs::jsonNumber(sweep[i].total_s)
            << ", \"slowdown\": " << obs::jsonNumber(sweep[i].slowdown)
            << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "[bench] backend xval results written to " << path
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out;
    double host_traffic = 0.0;
    const auto extra = [&](const std::string &arg, int argc_, char **argv_,
                           int &i) {
        if (arg == "--json" && i + 1 < argc_) {
            json_out = argv_[++i];
            return true;
        }
        if (arg == "--host-traffic" && i + 1 < argc_) {
            host_traffic =
                parseUnitInterval("--host-traffic", argv_[++i]);
            return true;
        }
        return false;
    };
    const BenchOptions opts = parseBenchArgs(
        argc, argv, extra,
        " [--json <file>] [--host-traffic <frac>]");

    const LutNnParams v4{4, 16};
    TransactionSimConfig txn;
    txn.host_traffic_intensity = host_traffic;
    const PimDlEngine analytical(upmemPlatform(), xeon4210Dual(),
                                 TimingBackendKind::Analytical);
    const PimDlEngine transaction(upmemPlatform(), xeon4210Dual(),
                                  TimingBackendKind::Transaction, txn);

    printBanner(std::cout,
                "Backend cross-validation: analytical vs transaction");
    if (host_traffic > 0.0)
        std::cout << "  (transaction tier with host traffic intensity "
                  << TablePrinter::fmt(host_traffic) << ")\n";

    std::vector<std::pair<std::string, TransformerConfig>> models = {
        {"BERT-base", bertBase()}};
    if (!opts.smoke) {
        models.emplace_back("BERT-large", bertLarge());
        models.emplace_back("ViT-huge", vitHuge());
    }

    std::vector<XvalEntry> entries;
    TablePrinter table({"Model", "Analytical (s)", "Transaction (s)",
                        "CCS err", "LUT err", "Attn err", "Other err",
                        "Total err"});
    double mean_err = 0.0;
    double max_err = 0.0;
    for (const auto &[name, model] : models) {
        const InferenceEstimate a = analytical.estimatePimDl(model, v4);
        const InferenceEstimate t = transaction.estimatePimDl(model, v4);
        XvalEntry e;
        e.model = name;
        e.analytical_s = a.total_s;
        e.transaction_s = t.total_s;
        e.err_ccs = relErr(a.ccs_s, t.ccs_s);
        e.err_lut = relErr(a.lut_s, t.lut_s);
        e.err_attention = relErr(a.attention_s, t.attention_s);
        e.err_other = relErr(a.other_s, t.other_s);
        e.err_total = relErr(a.total_s, t.total_s);
        mean_err += e.meanErr();
        max_err = std::max(
            {max_err, e.err_ccs, e.err_lut, e.err_attention, e.err_other,
             e.err_total});
        table.addRow({e.model, TablePrinter::fmt(e.analytical_s),
                      TablePrinter::fmt(e.transaction_s),
                      TablePrinter::fmt(e.err_ccs * 100.0, 2) + "%",
                      TablePrinter::fmt(e.err_lut * 100.0, 2) + "%",
                      TablePrinter::fmt(e.err_attention * 100.0, 2) + "%",
                      TablePrinter::fmt(e.err_other * 100.0, 2) + "%",
                      TablePrinter::fmt(e.err_total * 100.0, 2) + "%"});
        entries.push_back(e);
    }
    mean_err /= static_cast<double>(entries.size());
    table.print(std::cout);
    std::cout << "  mean rel err="
              << TablePrinter::fmt(mean_err * 100.0, 2) << "%  max="
              << TablePrinter::fmt(max_err * 100.0, 2) << "%  bound="
              << TablePrinter::fmt(kErrorBound * 100.0, 0) << "%\n";

    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.gauge("backend.xval.mean_rel_err").set(mean_err);
    reg.gauge("backend.xval.max_rel_err").set(max_err);
    reg.gauge("backend.xval.bound").set(kErrorBound);

    // Section 2: co-located host traffic arbitration sweep (BERT-base).
    printBanner(std::cout,
                "Arbitration sweep: PIM latency vs host DRAM traffic");
    std::vector<SweepEntry> sweep;
    TablePrinter sweep_table(
        {"Host traffic", "Total (s)", "Slowdown vs idle"});
    bool monotone = true;
    for (double intensity : kSweepIntensities) {
        TransactionSimConfig cfg;
        cfg.host_traffic_intensity = intensity;
        const PimDlEngine eng(upmemPlatform(), xeon4210Dual(),
                              TimingBackendKind::Transaction, cfg);
        SweepEntry point;
        point.intensity = intensity;
        point.total_s = eng.estimatePimDl(bertBase(), v4).total_s;
        point.slowdown =
            sweep.empty() ? 1.0 : point.total_s / sweep.front().total_s;
        if (!sweep.empty() && point.total_s < sweep.back().total_s)
            monotone = false;
        sweep_table.addRow({TablePrinter::fmt(intensity, 1),
                            TablePrinter::fmt(point.total_s),
                            TablePrinter::fmtRatio(point.slowdown)});
        sweep.push_back(point);
    }
    sweep_table.print(std::cout);
    if (!monotone)
        std::cout << "  ERROR: latency not monotone in traffic "
                     "intensity\n";

    // Section 3: a short batched-serving run under each backend (the
    // backend reaches serving through the engine's BatchLatencyFn) —
    // also populates the serving.* metrics of the snapshot schema.
    printBanner(std::cout, "Serving smoke under both backends");
    for (const PimDlEngine *eng : {&analytical, &transaction}) {
        ServingSimulator sim(*eng, bertBase(), v4);
        ServingConfig serving;
        serving.max_batch = 32;
        const double capacity =
            static_cast<double>(serving.max_batch) /
            sim.batchLatency(serving.max_batch,
                             SchedulePolicy::Sequential);
        serving.arrival_rate = 0.6 * capacity;
        serving.max_wait_s = 0.25;
        serving.horizon_s = opts.smoke ? 20.0 : 60.0;
        const ServingStats stats = sim.simulate(serving);
        std::cout << "  " << eng->backend().name()
                  << ": throughput="
                  << TablePrinter::fmt(stats.throughput_rps, 2)
                  << " rps p99="
                  << TablePrinter::fmt(stats.p99_latency_s, 3)
                  << "s util="
                  << TablePrinter::fmt(stats.utilization * 100.0, 1)
                  << "%\n";
    }

    if (!json_out.empty())
        writeBackendJson(json_out, entries, sweep, mean_err, max_err);
    writeBenchArtifacts(opts);

    if (mean_err >= kErrorBound) {
        std::cerr << "FAIL: mean relative error "
                  << TablePrinter::fmt(mean_err * 100.0, 2)
                  << "% >= bound "
                  << TablePrinter::fmt(kErrorBound * 100.0, 0) << "%\n";
        return 1;
    }
    if (!monotone) {
        std::cerr << "FAIL: transaction latency not monotone in host "
                     "traffic intensity\n";
        return 1;
    }
    return 0;
}
