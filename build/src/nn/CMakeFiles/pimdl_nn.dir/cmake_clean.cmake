file(REMOVE_RECURSE
  "CMakeFiles/pimdl_nn.dir/classifier.cc.o"
  "CMakeFiles/pimdl_nn.dir/classifier.cc.o.d"
  "CMakeFiles/pimdl_nn.dir/model_config.cc.o"
  "CMakeFiles/pimdl_nn.dir/model_config.cc.o.d"
  "CMakeFiles/pimdl_nn.dir/synthetic.cc.o"
  "CMakeFiles/pimdl_nn.dir/synthetic.cc.o.d"
  "libpimdl_nn.a"
  "libpimdl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimdl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
