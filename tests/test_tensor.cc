/** @file Unit tests for the dense Tensor type. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace pimdl {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.rows(), 0u);
    EXPECT_EQ(t.cols(), 0u);
    EXPECT_TRUE(t.empty());
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.size(), 12u);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, ConstructFromData)
{
    Tensor t(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_EQ(t(0, 0), 1.0f);
    EXPECT_EQ(t(0, 1), 2.0f);
    EXPECT_EQ(t(1, 0), 3.0f);
    EXPECT_EQ(t(1, 1), 4.0f);
}

TEST(Tensor, ConstructFromDataRejectsBadSize)
{
    EXPECT_THROW(Tensor(2, 2, {1.0f, 2.0f}), std::runtime_error);
}

TEST(Tensor, RowMajorLayout)
{
    Tensor t(2, 3);
    t(1, 2) = 5.0f;
    EXPECT_EQ(t.data()[1 * 3 + 2], 5.0f);
    EXPECT_EQ(t.rowPtr(1)[2], 5.0f);
}

TEST(Tensor, FillSetsEveryElement)
{
    Tensor t(4, 4);
    t.fill(2.5f);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.data()[i], 2.5f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(2, 6);
    t(1, 5) = 7.0f;
    t.reshape(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t(2, 3), 7.0f);
}

TEST(Tensor, ReshapeRejectsSizeChange)
{
    Tensor t(2, 6);
    EXPECT_THROW(t.reshape(2, 5), std::runtime_error);
}

TEST(Tensor, TransposeRoundTrip)
{
    Rng rng(1);
    Tensor t(3, 5);
    t.fillGaussian(rng);
    Tensor tt = t.transposed().transposed();
    EXPECT_EQ(maxAbsDiff(t, tt), 0.0f);
}

TEST(Tensor, TransposeSwapsElements)
{
    Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor tr = t.transposed();
    EXPECT_EQ(tr.rows(), 3u);
    EXPECT_EQ(tr.cols(), 2u);
    EXPECT_EQ(tr(2, 1), 6.0f);
    EXPECT_EQ(tr(0, 1), 4.0f);
}

TEST(Tensor, RowSlice)
{
    Tensor t(4, 2, {0, 1, 2, 3, 4, 5, 6, 7});
    Tensor s = t.rowSlice(1, 3);
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_EQ(s(0, 0), 2.0f);
    EXPECT_EQ(s(1, 1), 5.0f);
}

TEST(Tensor, ColSlice)
{
    Tensor t(2, 4, {0, 1, 2, 3, 4, 5, 6, 7});
    Tensor s = t.colSlice(1, 3);
    EXPECT_EQ(s.cols(), 2u);
    EXPECT_EQ(s(0, 0), 1.0f);
    EXPECT_EQ(s(1, 1), 6.0f);
}

TEST(Tensor, SliceBoundsChecked)
{
    Tensor t(2, 2);
    EXPECT_THROW(t.rowSlice(1, 3), std::runtime_error);
    EXPECT_THROW(t.colSlice(2, 1), std::runtime_error);
}

TEST(Tensor, FillGaussianIsDeterministic)
{
    Rng a(42), b(42);
    Tensor ta(8, 8), tb(8, 8);
    ta.fillGaussian(a);
    tb.fillGaussian(b);
    EXPECT_EQ(maxAbsDiff(ta, tb), 0.0f);
}

TEST(Tensor, FrobeniusNorm)
{
    Tensor t(1, 2, {3.0f, 4.0f});
    EXPECT_FLOAT_EQ(frobeniusNorm(t), 5.0f);
}

TEST(Tensor, RelativeErrorZeroForIdentical)
{
    Rng rng(3);
    Tensor t(5, 5);
    t.fillGaussian(rng);
    EXPECT_EQ(relativeError(t, t), 0.0f);
}

TEST(Tensor, RelativeErrorScalesWithPerturbation)
{
    Tensor ref(1, 4, {1, 1, 1, 1});
    Tensor approx(1, 4, {1.1f, 1.1f, 1.1f, 1.1f});
    EXPECT_NEAR(relativeError(approx, ref), 0.1f, 1e-5f);
}

TEST(Tensor, MaxAbsDiffShapeChecked)
{
    Tensor a(2, 2), b(2, 3);
    EXPECT_THROW(maxAbsDiff(a, b), std::runtime_error);
}

} // namespace
} // namespace pimdl
