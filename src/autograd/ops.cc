#include "ops.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace pimdl {
namespace ag {

namespace {

/** Adds @p delta into @p parent's grad buffer if it participates. */
void
accumulate(Node &parent, const Tensor &delta)
{
    if (!parent.requires_grad)
        return;
    Tensor &g = parent.ensureGrad();
    PIMDL_ASSERT(g.rows() == delta.rows() && g.cols() == delta.cols(),
                 "gradient shape mismatch");
    for (std::size_t i = 0; i < g.size(); ++i)
        g.data()[i] += delta.data()[i];
}

} // namespace

Variable
matmul(Variable a, Variable b)
{
    Tensor value = gemm(a.value(), b.value());
    Tensor a_val = a.value();
    Tensor b_val = b.value();
    return Variable::op(std::move(value), {a, b}, [a_val, b_val](Node &self) {
        if (self.parents[0]->requires_grad)
            accumulate(*self.parents[0], gemm(self.grad, b_val.transposed()));
        if (self.parents[1]->requires_grad)
            accumulate(*self.parents[1], gemm(a_val.transposed(), self.grad));
    });
}

Variable
add(Variable a, Variable b)
{
    Tensor value = pimdl::add(a.value(), b.value());
    return Variable::op(std::move(value), {a, b}, [](Node &self) {
        accumulate(*self.parents[0], self.grad);
        accumulate(*self.parents[1], self.grad);
    });
}

Variable
sub(Variable a, Variable b)
{
    PIMDL_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch in sub");
    Tensor value(a.rows(), a.cols());
    for (std::size_t i = 0; i < value.size(); ++i)
        value.data()[i] = a.value().data()[i] - b.value().data()[i];
    return Variable::op(std::move(value), {a, b}, [](Node &self) {
        accumulate(*self.parents[0], self.grad);
        if (self.parents[1]->requires_grad) {
            Tensor neg(self.grad.rows(), self.grad.cols());
            for (std::size_t i = 0; i < neg.size(); ++i)
                neg.data()[i] = -self.grad.data()[i];
            accumulate(*self.parents[1], neg);
        }
    });
}

Variable
addRowBroadcast(Variable x, Variable bias)
{
    PIMDL_REQUIRE(bias.rows() == 1 && bias.cols() == x.cols(),
                  "bias must be 1 x cols(x)");
    Tensor value = x.value();
    for (std::size_t r = 0; r < value.rows(); ++r) {
        float *row = value.rowPtr(r);
        const float *b = bias.value().rowPtr(0);
        for (std::size_t c = 0; c < value.cols(); ++c)
            row[c] += b[c];
    }
    return Variable::op(std::move(value), {x, bias}, [](Node &self) {
        accumulate(*self.parents[0], self.grad);
        if (self.parents[1]->requires_grad) {
            Tensor db(1, self.grad.cols());
            for (std::size_t r = 0; r < self.grad.rows(); ++r) {
                const float *row = self.grad.rowPtr(r);
                for (std::size_t c = 0; c < self.grad.cols(); ++c)
                    db(0, c) += row[c];
            }
            accumulate(*self.parents[1], db);
        }
    });
}

Variable
mulScalar(Variable x, float s)
{
    Tensor value = scale(x.value(), s);
    return Variable::op(std::move(value), {x}, [s](Node &self) {
        if (self.parents[0]->requires_grad)
            accumulate(*self.parents[0], scale(self.grad, s));
    });
}

Variable
gelu(Variable x)
{
    Tensor value = pimdl::gelu(x.value());
    Tensor x_val = x.value();
    return Variable::op(std::move(value), {x}, [x_val](Node &self) {
        if (!self.parents[0]->requires_grad)
            return;
        Tensor dx = geluGrad(x_val);
        for (std::size_t i = 0; i < dx.size(); ++i)
            dx.data()[i] *= self.grad.data()[i];
        accumulate(*self.parents[0], dx);
    });
}

Variable
relu(Variable x)
{
    Tensor value = pimdl::relu(x.value());
    Tensor x_val = x.value();
    return Variable::op(std::move(value), {x}, [x_val](Node &self) {
        if (!self.parents[0]->requires_grad)
            return;
        Tensor dx(x_val.rows(), x_val.cols());
        for (std::size_t i = 0; i < dx.size(); ++i)
            dx.data()[i] = x_val.data()[i] > 0.0f ? self.grad.data()[i]
                                                  : 0.0f;
        accumulate(*self.parents[0], dx);
    });
}

Variable
rowSoftmax(Variable x)
{
    Tensor value = softmaxRows(x.value());
    Tensor probs = value;
    return Variable::op(std::move(value), {x}, [probs](Node &self) {
        if (!self.parents[0]->requires_grad)
            return;
        Tensor dx(probs.rows(), probs.cols());
        for (std::size_t r = 0; r < probs.rows(); ++r) {
            const float *p = probs.rowPtr(r);
            const float *g = self.grad.rowPtr(r);
            float dot = 0.0f;
            for (std::size_t c = 0; c < probs.cols(); ++c)
                dot += p[c] * g[c];
            float *d = dx.rowPtr(r);
            for (std::size_t c = 0; c < probs.cols(); ++c)
                d[c] = p[c] * (g[c] - dot);
        }
        accumulate(*self.parents[0], dx);
    });
}

Variable
layerNorm(Variable x, Variable gamma, Variable beta, float epsilon)
{
    const std::size_t n = x.rows();
    const std::size_t f = x.cols();
    PIMDL_REQUIRE(gamma.rows() == 1 && gamma.cols() == f &&
                      beta.rows() == 1 && beta.cols() == f,
                  "layerNorm affine params must be 1 x cols(x)");

    Tensor value(n, f);
    Tensor normalized(n, f);
    std::vector<float> inv_sigma(n);
    for (std::size_t r = 0; r < n; ++r) {
        const float *src = x.value().rowPtr(r);
        double sum = 0.0;
        for (std::size_t c = 0; c < f; ++c)
            sum += src[c];
        const float mu = static_cast<float>(sum / f);
        double var = 0.0;
        for (std::size_t c = 0; c < f; ++c) {
            const double d = src[c] - mu;
            var += d * d;
        }
        inv_sigma[r] = 1.0f /
            std::sqrt(static_cast<float>(var / f) + epsilon);
        const float *g = gamma.value().rowPtr(0);
        const float *b = beta.value().rowPtr(0);
        for (std::size_t c = 0; c < f; ++c) {
            normalized(r, c) = (src[c] - mu) * inv_sigma[r];
            value(r, c) = normalized(r, c) * g[c] + b[c];
        }
    }

    Tensor gamma_val = gamma.value();
    return Variable::op(
        std::move(value), {x, gamma, beta},
        [normalized, inv_sigma, gamma_val, f](Node &self) {
            const std::size_t n_rows = normalized.rows();
            if (self.parents[1]->requires_grad) {
                Tensor dgamma(1, f);
                for (std::size_t r = 0; r < n_rows; ++r) {
                    const float *g = self.grad.rowPtr(r);
                    const float *xn = normalized.rowPtr(r);
                    for (std::size_t c = 0; c < f; ++c)
                        dgamma(0, c) += g[c] * xn[c];
                }
                accumulate(*self.parents[1], dgamma);
            }
            if (self.parents[2]->requires_grad) {
                Tensor dbeta(1, f);
                for (std::size_t r = 0; r < n_rows; ++r) {
                    const float *g = self.grad.rowPtr(r);
                    for (std::size_t c = 0; c < f; ++c)
                        dbeta(0, c) += g[c];
                }
                accumulate(*self.parents[2], dbeta);
            }
            if (self.parents[0]->requires_grad) {
                Tensor dx(n_rows, f);
                const float *gam = gamma_val.rowPtr(0);
                for (std::size_t r = 0; r < n_rows; ++r) {
                    const float *g = self.grad.rowPtr(r);
                    const float *xn = normalized.rowPtr(r);
                    // h = gamma * grad; dx = (h - mean(h)
                    //     - xn * mean(h * xn)) * inv_sigma
                    double mean_h = 0.0;
                    double mean_hx = 0.0;
                    for (std::size_t c = 0; c < f; ++c) {
                        const double h = static_cast<double>(gam[c]) * g[c];
                        mean_h += h;
                        mean_hx += h * xn[c];
                    }
                    mean_h /= f;
                    mean_hx /= f;
                    float *d = dx.rowPtr(r);
                    for (std::size_t c = 0; c < f; ++c) {
                        const double h = static_cast<double>(gam[c]) * g[c];
                        d[c] = static_cast<float>(
                            (h - mean_h - xn[c] * mean_hx) * inv_sigma[r]);
                    }
                }
                accumulate(*self.parents[0], dx);
            }
        });
}

Variable
transpose(Variable x)
{
    Tensor value = x.value().transposed();
    return Variable::op(std::move(value), {x}, [](Node &self) {
        if (self.parents[0]->requires_grad)
            accumulate(*self.parents[0], self.grad.transposed());
    });
}

Variable
colSlice(Variable x, std::size_t begin, std::size_t end)
{
    PIMDL_REQUIRE(begin < end && end <= x.cols(),
                  "column slice out of range");
    Tensor value = x.value().colSlice(begin, end);
    return Variable::op(std::move(value), {x}, [begin, end](Node &self) {
        if (!self.parents[0]->requires_grad)
            return;
        Node &parent = *self.parents[0];
        Tensor dx(parent.value.rows(), parent.value.cols());
        for (std::size_t r = 0; r < dx.rows(); ++r) {
            const float *g = self.grad.rowPtr(r);
            float *d = dx.rowPtr(r);
            for (std::size_t c = begin; c < end; ++c)
                d[c] = g[c - begin];
        }
        accumulate(parent, dx);
    });
}

Variable
concatCols(const std::vector<Variable> &parts)
{
    PIMDL_REQUIRE(!parts.empty(), "concatCols needs at least one part");
    const std::size_t rows = parts[0].rows();
    std::size_t total_cols = 0;
    std::vector<std::size_t> offsets;
    offsets.reserve(parts.size());
    for (const Variable &p : parts) {
        PIMDL_REQUIRE(p.rows() == rows, "concatCols row mismatch");
        offsets.push_back(total_cols);
        total_cols += p.cols();
    }

    Tensor value(rows, total_cols);
    for (std::size_t i = 0; i < parts.size(); ++i) {
        const Tensor &src = parts[i].value();
        for (std::size_t r = 0; r < rows; ++r) {
            const float *s = src.rowPtr(r);
            float *d = value.rowPtr(r) + offsets[i];
            for (std::size_t c = 0; c < src.cols(); ++c)
                d[c] = s[c];
        }
    }

    std::vector<Variable> parents(parts.begin(), parts.end());
    return Variable::op(
        std::move(value), std::move(parents), [offsets](Node &self) {
            for (std::size_t i = 0; i < self.parents.size(); ++i) {
                Node &parent = *self.parents[i];
                if (!parent.requires_grad)
                    continue;
                Tensor dp(parent.value.rows(), parent.value.cols());
                for (std::size_t r = 0; r < dp.rows(); ++r) {
                    const float *g = self.grad.rowPtr(r) + offsets[i];
                    float *d = dp.rowPtr(r);
                    for (std::size_t c = 0; c < dp.cols(); ++c)
                        d[c] = g[c];
                }
                accumulate(parent, dp);
            }
        });
}

Variable
meanRows(Variable x)
{
    const std::size_t n = x.rows();
    Tensor value(1, x.cols());
    for (std::size_t r = 0; r < n; ++r) {
        const float *src = x.value().rowPtr(r);
        for (std::size_t c = 0; c < x.cols(); ++c)
            value(0, c) += src[c] / static_cast<float>(n);
    }
    return Variable::op(std::move(value), {x}, [n](Node &self) {
        if (!self.parents[0]->requires_grad)
            return;
        Tensor dx(self.parents[0]->value.rows(),
                  self.parents[0]->value.cols());
        const float inv_n = 1.0f / static_cast<float>(n);
        for (std::size_t r = 0; r < dx.rows(); ++r) {
            float *d = dx.rowPtr(r);
            const float *g = self.grad.rowPtr(0);
            for (std::size_t c = 0; c < dx.cols(); ++c)
                d[c] = g[c] * inv_n;
        }
        accumulate(*self.parents[0], dx);
    });
}

namespace {

Variable
squaredDiffReduce(Variable a, Variable b, bool take_mean)
{
    PIMDL_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch in squared-diff loss");
    const std::size_t count = a.value().size();
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const double d = static_cast<double>(a.value().data()[i]) -
                         b.value().data()[i];
        sum += d * d;
    }
    const float norm = take_mean ? 1.0f / static_cast<float>(count) : 1.0f;
    Tensor value(1, 1);
    value(0, 0) = static_cast<float>(sum) * norm;

    Tensor a_val = a.value();
    Tensor b_val = b.value();
    return Variable::op(
        std::move(value), {a, b}, [a_val, b_val, norm](Node &self) {
            const float g = self.grad(0, 0) * 2.0f * norm;
            if (self.parents[0]->requires_grad) {
                Tensor da(a_val.rows(), a_val.cols());
                for (std::size_t i = 0; i < da.size(); ++i)
                    da.data()[i] = g * (a_val.data()[i] - b_val.data()[i]);
                accumulate(*self.parents[0], da);
            }
            if (self.parents[1]->requires_grad) {
                Tensor db(b_val.rows(), b_val.cols());
                for (std::size_t i = 0; i < db.size(); ++i)
                    db.data()[i] = -g * (a_val.data()[i] - b_val.data()[i]);
                accumulate(*self.parents[1], db);
            }
        });
}

} // namespace

Variable
mseLoss(Variable a, Variable b)
{
    return squaredDiffReduce(std::move(a), std::move(b), true);
}

Variable
sumSquaredDiff(Variable a, Variable b)
{
    return squaredDiffReduce(std::move(a), std::move(b), false);
}

Variable
softmaxCrossEntropy(Variable logits, const std::vector<std::size_t> &labels)
{
    PIMDL_REQUIRE(labels.size() == logits.rows(),
                  "one label per logits row required");
    Tensor probs = softmaxRows(logits.value());
    double loss = 0.0;
    for (std::size_t r = 0; r < probs.rows(); ++r) {
        PIMDL_REQUIRE(labels[r] < probs.cols(), "label out of range");
        loss -= std::log(std::max(probs(r, labels[r]), 1e-12f));
    }
    Tensor value(1, 1);
    value(0, 0) = static_cast<float>(loss / probs.rows());

    std::vector<std::size_t> labels_copy = labels;
    return Variable::op(
        std::move(value), {logits}, [probs, labels_copy](Node &self) {
            if (!self.parents[0]->requires_grad)
                return;
            const float g = self.grad(0, 0) /
                            static_cast<float>(probs.rows());
            Tensor dx = probs;
            for (std::size_t r = 0; r < dx.rows(); ++r)
                dx(r, labels_copy[r]) -= 1.0f;
            for (std::size_t i = 0; i < dx.size(); ++i)
                dx.data()[i] *= g;
            accumulate(*self.parents[0], dx);
        });
}

Variable
centroidAssign(Variable x, Variable centroids, std::size_t cb,
               std::size_t ct, std::size_t v)
{
    PIMDL_REQUIRE(x.cols() == cb * v, "x width must equal cb * v");
    PIMDL_REQUIRE(centroids.rows() == cb * ct && centroids.cols() == v,
                  "centroid leaf must be (cb*ct) x v");

    const std::size_t n = x.rows();
    Tensor value(n, x.cols());
    // assignment[r * cb + i] = chosen centroid row (global index).
    std::vector<std::size_t> assignment(n * cb);

    const Tensor &cvals = centroids.value();
    for (std::size_t r = 0; r < n; ++r) {
        const float *row = x.value().rowPtr(r);
        float *out = value.rowPtr(r);
        for (std::size_t i = 0; i < cb; ++i) {
            const float *sub = row + i * v;
            std::size_t best = i * ct;
            double best_dist = 0.0;
            for (std::size_t j = 0; j < ct; ++j) {
                const float *c = cvals.rowPtr(i * ct + j);
                double dist = 0.0;
                for (std::size_t d = 0; d < v; ++d) {
                    const double diff = static_cast<double>(sub[d]) - c[d];
                    dist += diff * diff;
                }
                if (j == 0 || dist < best_dist) {
                    best_dist = dist;
                    best = i * ct + j;
                }
            }
            assignment[r * cb + i] = best;
            const float *c = cvals.rowPtr(best);
            for (std::size_t d = 0; d < v; ++d)
                out[i * v + d] = c[d];
        }
    }

    return Variable::op(
        std::move(value), {x, centroids},
        [assignment, cb, ct, v](Node &self) {
            const std::size_t n_rows = self.grad.rows();
            // STE: gradient w.r.t. the activations passes through as-is.
            accumulate(*self.parents[0], self.grad);
            if (self.parents[1]->requires_grad) {
                Tensor dc(cb * ct, v);
                for (std::size_t r = 0; r < n_rows; ++r) {
                    const float *g = self.grad.rowPtr(r);
                    for (std::size_t i = 0; i < cb; ++i) {
                        const std::size_t row = assignment[r * cb + i];
                        float *d = dc.rowPtr(row);
                        for (std::size_t dim = 0; dim < v; ++dim)
                            d[dim] += g[i * v + dim];
                    }
                }
                accumulate(*self.parents[1], dc);
            }
        });
}

Variable
softAssign(Variable x, Variable centroids, std::size_t cb, std::size_t ct,
           std::size_t v, float temperature)
{
    PIMDL_REQUIRE(x.cols() == cb * v, "x width must equal cb * v");
    PIMDL_REQUIRE(centroids.rows() == cb * ct && centroids.cols() == v,
                  "centroid leaf must be (cb*ct) x v");
    PIMDL_REQUIRE(temperature > 0.0f, "temperature must be positive");

    const std::size_t n = x.rows();
    Tensor value(n, x.cols());
    // Softmax weights for every (row, codebook, centroid) triple.
    Tensor weights(n * cb, ct);

    const Tensor &cvals = centroids.value();
    const float inv_tau = 1.0f / temperature;
    for (std::size_t r = 0; r < n; ++r) {
        const float *row = x.value().rowPtr(r);
        float *out = value.rowPtr(r);
        for (std::size_t i = 0; i < cb; ++i) {
            const float *sub = row + i * v;
            float *w = weights.rowPtr(r * cb + i);
            float max_score = -1e30f;
            for (std::size_t j = 0; j < ct; ++j) {
                const float *c = cvals.rowPtr(i * ct + j);
                float dist = 0.0f;
                for (std::size_t d = 0; d < v; ++d) {
                    const float diff = sub[d] - c[d];
                    dist += diff * diff;
                }
                w[j] = -dist * inv_tau;
                max_score = std::max(max_score, w[j]);
            }
            float sum = 0.0f;
            for (std::size_t j = 0; j < ct; ++j) {
                w[j] = std::exp(w[j] - max_score);
                sum += w[j];
            }
            const float inv_sum = 1.0f / sum;
            for (std::size_t j = 0; j < ct; ++j)
                w[j] *= inv_sum;
            for (std::size_t d = 0; d < v; ++d) {
                float mix = 0.0f;
                for (std::size_t j = 0; j < ct; ++j)
                    mix += w[j] * cvals(i * ct + j, d);
                out[i * v + d] = mix;
            }
        }
    }

    Tensor x_val = x.value();
    Tensor c_val = cvals;
    return Variable::op(
        std::move(value), {x, centroids},
        [weights, x_val, c_val, cb, ct, v, inv_tau](Node &self) {
            const std::size_t n_rows = self.grad.rows();
            const bool need_dx = self.parents[0]->requires_grad;
            const bool need_dc = self.parents[1]->requires_grad;
            Tensor dx(need_dx ? n_rows : 0, need_dx ? cb * v : 0);
            Tensor dc(need_dc ? cb * ct : 0, need_dc ? v : 0);

            std::vector<float> dL_dp(ct);
            std::vector<float> ds(ct);
            for (std::size_t r = 0; r < n_rows; ++r) {
                const float *g = self.grad.rowPtr(r);
                const float *sub_row = x_val.rowPtr(r);
                for (std::size_t i = 0; i < cb; ++i) {
                    const float *w = weights.rowPtr(r * cb + i);
                    const float *sub = sub_row + i * v;
                    const float *gsub = g + i * v;

                    // dL/dp_j = g . c_j ; softmax jacobian gives ds.
                    float dot_pw = 0.0f;
                    for (std::size_t j = 0; j < ct; ++j) {
                        float acc = 0.0f;
                        const float *c = c_val.rowPtr(i * ct + j);
                        for (std::size_t d = 0; d < v; ++d)
                            acc += gsub[d] * c[d];
                        dL_dp[j] = acc;
                        dot_pw += w[j] * acc;
                    }
                    for (std::size_t j = 0; j < ct; ++j)
                        ds[j] = w[j] * (dL_dp[j] - dot_pw);

                    for (std::size_t j = 0; j < ct; ++j) {
                        const float *c = c_val.rowPtr(i * ct + j);
                        // s_j = -||x - c_j||^2 / tau
                        // ds_j/dc = 2 (x - c_j) / tau;  ds_j/dx = -that.
                        if (need_dc) {
                            float *d = dc.rowPtr(i * ct + j);
                            for (std::size_t dim = 0; dim < v; ++dim) {
                                const float delta =
                                    2.0f * inv_tau * (sub[dim] - c[dim]);
                                d[dim] += w[j] * gsub[dim] + ds[j] * delta;
                            }
                        }
                        if (need_dx) {
                            float *d = dx.rowPtr(r) + i * v;
                            for (std::size_t dim = 0; dim < v; ++dim) {
                                const float delta =
                                    2.0f * inv_tau * (sub[dim] - c[dim]);
                                d[dim] -= ds[j] * delta;
                            }
                        }
                    }
                }
            }
            if (need_dx)
                accumulate(*self.parents[0], dx);
            if (need_dc)
                accumulate(*self.parents[1], dc);
        });
}

} // namespace ag
} // namespace pimdl
