#include "codebook.h"

#include "kernels/kernels.h"

namespace pimdl {

void
LutShape::validate() const
{
    PIMDL_REQUIRE(input_dim > 0 && output_dim > 0, "empty LUT shape");
    PIMDL_REQUIRE(subvec_len > 0 && input_dim % subvec_len == 0,
                  "input dim must be a multiple of the sub-vector length");
    PIMDL_REQUIRE(centroids > 0 && centroids <= 65536,
                  "centroid count must fit in a 16-bit index");
}

CodebookSet::CodebookSet(std::size_t codebooks, std::size_t centroids,
                         std::size_t subvec_len)
    : codebooks_(codebooks), centroids_(centroids), subvec_len_(subvec_len),
      data_(codebooks * centroids * subvec_len, 0.0f),
      norms_(codebooks * centroids, 0.0f)
{}

float *
CodebookSet::centroid(std::size_t cb, std::size_t ct)
{
    return data_.data() + (cb * centroids_ + ct) * subvec_len_;
}

const float *
CodebookSet::centroid(std::size_t cb, std::size_t ct) const
{
    return data_.data() + (cb * centroids_ + ct) * subvec_len_;
}

void
CodebookSet::refreshNorms()
{
    for (std::size_t cb = 0; cb < codebooks_; ++cb) {
        for (std::size_t ct = 0; ct < centroids_; ++ct) {
            const float *c = centroid(cb, ct);
            float sum = 0.0f;
            for (std::size_t v = 0; v < subvec_len_; ++v)
                sum += c[v] * c[v];
            norms_[cb * centroids_ + ct] = sum;
        }
    }
}

std::size_t
CodebookSet::nearest(std::size_t cb, const float *v) const
{
    // argmin_c ||v - c||^2 == argmin_c (||c||^2 - 2 v.c); ||v||^2 constant.
    // Dispatched micro-kernel; every ISA variant reproduces the scalar
    // scan (sequential dot, strict less-than, first minimum wins)
    // bit-exactly.
    return kernels::best().ccs_argmin(v, centroid(cb, 0), normsPtr(cb),
                                      centroids_, subvec_len_);
}

CodebookSet
CodebookSet::learn(const Tensor &activations, std::size_t subvec_len,
                   std::size_t centroids, const KMeansOptions &kmeans_options)
{
    PIMDL_REQUIRE(activations.cols() % subvec_len == 0,
                  "activation width must be a multiple of V");
    const std::size_t cb_count = activations.cols() / subvec_len;
    CodebookSet set(cb_count, centroids, subvec_len);

    Tensor column(activations.rows(), subvec_len);
    for (std::size_t cb = 0; cb < cb_count; ++cb) {
        for (std::size_t r = 0; r < activations.rows(); ++r) {
            const float *src = activations.rowPtr(r) + cb * subvec_len;
            float *dst = column.rowPtr(r);
            for (std::size_t d = 0; d < subvec_len; ++d)
                dst[d] = src[d];
        }
        KMeansOptions opts = kmeans_options;
        opts.clusters = centroids;
        opts.seed = kmeans_options.seed + cb;
        const KMeansResult result = kmeans(column, opts);
        for (std::size_t ct = 0; ct < centroids; ++ct) {
            float *dst = set.centroid(cb, ct);
            for (std::size_t d = 0; d < subvec_len; ++d)
                dst[d] = result.centroids(ct, d);
        }
    }
    set.refreshNorms();
    return set;
}

} // namespace pimdl
