/**
 * @file
 * Concurrency stress tests targeting the mutex-guarded state the
 * thread-safety annotations (common/thread_annotations.h) protect:
 * the tune memo, the metrics registry, the serving latency cache, and
 * the fault injector's forced-failure set. Functionally they assert
 * determinism and cache coherence; under the ThreadSanitizer build
 * (PIMDL_TSAN, CI "tsan" job) they double as race detectors, so every
 * scenario drives real cross-thread contention with std::thread —
 * parallelFor alone degrades to one worker on single-core runners.
 */

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/mpmc_queue.h"
#include "common/parallel.h"
#include "lutnn/converter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/lut_executor.h"
#include "runtime/serving.h"
#include "tuner/tune_memo.h"

namespace pimdl {
namespace {

constexpr std::size_t kThreads = 8;

/** Runs @p body on kThreads concurrent threads and joins them. */
void
onThreads(const std::function<void(std::size_t)> &body)
{
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t]() { body(t); });
    for (std::thread &t : pool)
        t.join();
}

TEST(ConcurrencyStress, TuneMemoStormDeduplicatesAndAgrees)
{
    const PimPlatformConfig platform = upmemPlatform();
    const AutoTuner tuner(platform);
    const TuneMemo memo(tuner);

    LutWorkloadShape shapes[3];
    for (std::size_t s = 0; s < 3; ++s) {
        shapes[s].n = 64 << s;
        shapes[s].cb = 32;
        shapes[s].ct = 16;
        shapes[s].f = 128;
    }

    onThreads([&](std::size_t t) {
        for (std::size_t i = 0; i < 12; ++i) {
            const AutoTuneResult &r = memo.tune(shapes[(t + i) % 3]);
            ASSERT_TRUE(r.found);
        }
    });

    EXPECT_EQ(memo.size(), 3u);
    // Memoized references are stable: re-tuning returns the object
    // the storm populated, not a fresh search result.
    for (const LutWorkloadShape &shape : shapes)
        EXPECT_EQ(&memo.tune(shape), &memo.tune(shape));
}

TEST(ConcurrencyStress, MetricsRegistryHammering)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    obs::Counter &counter = reg.counter("stress.counter");
    obs::Histogram &hist = reg.histogram("stress.histogram");
    const std::uint64_t c0 = counter.value();
    const std::uint64_t h0 = hist.count();

    // Writers hammer cached references while readers concurrently
    // create metrics and take snapshots through the registry lock.
    onThreads([&](std::size_t t) {
        for (std::size_t i = 0; i < 200; ++i) {
            counter.add();
            hist.record(static_cast<double>(i));
            reg.gauge("stress.gauge." + std::to_string(t)).set(1.0);
            if (i % 50 == 0) {
                (void)reg.counters();
                (void)hist.snapshot();
            }
        }
        // parallelFor nests its own metrics updates underneath.
        parallelFor(32, [&](std::size_t) { counter.add(); });
    });

    EXPECT_EQ(counter.value(), c0 + kThreads * (200 + 32));
    EXPECT_EQ(hist.count(), h0 + kThreads * 200);
    EXPECT_FALSE(reg.toJson().empty());
}

TEST(ConcurrencyStress, TraceRecorderAndLoggerFromManyThreads)
{
    onThreads([&](std::size_t t) {
        for (std::size_t i = 0; i < 64; ++i) {
            obs::TraceSpan span("stress.span");
            span.attr("thread", static_cast<std::uint64_t>(t));
            logMessage(LogLevel::Debug,
                       "stress " + std::to_string(t));
        }
    });
    SUCCEED();
}

TEST(ConcurrencyStress, ServingLatencyCacheUnderConcurrentSweeps)
{
    PimDlEngine engine(upmemPlatform(), xeon4210Dual());
    const TransformerConfig model =
        customTransformer("stress-serve", 128, 1, 32, 2);
    const ServingSimulator sim(engine, model, LutNnParams{4, 16});

    std::vector<double> latency(kThreads, 0.0);
    onThreads([&](std::size_t t) {
        for (std::size_t i = 0; i < 6; ++i) {
            const std::size_t batch = 1 + (t + i) % 4;
            const double l =
                sim.batchLatency(batch, SchedulePolicy::Sequential);
            ASSERT_GT(l, 0.0);
            if (batch == 1)
                latency[t] = l;
        }
    });

    // Every thread observed the same memoized latency for batch 1.
    const double expected =
        sim.batchLatency(1, SchedulePolicy::Sequential);
    for (double l : latency)
        EXPECT_DOUBLE_EQ(l, expected);
}

TEST(ConcurrencyStress, FaultInjectorDrainRacesLivenessQueries)
{
    FaultConfig config;
    config.seed = 77;
    FaultInjector faults(config);

    // Operator drain (forceFailPe) races the hot liveness queries the
    // simulated PEs issue — the exact pair forced_mu_ guards.
    onThreads([&](std::size_t t) {
        for (std::size_t i = 0; i < 128; ++i) {
            if (t % 2 == 0)
                faults.forceFailPe(t * 1000 + i);
            else
                (void)faults.peHardFailed(i % 64);
        }
    });

    for (std::size_t t = 0; t < kThreads; t += 2)
        EXPECT_TRUE(faults.peHardFailed(t * 1000));
}

TEST(ConcurrencyStress, FaultedExecutorRunsUnderParallelFor)
{
    Rng rng(60);
    Tensor w(16, 24);
    w.fillGaussian(rng);
    Tensor calib(128, 16);
    calib.fillGaussian(rng);
    ConvertOptions options;
    options.subvec_len = 2;
    options.centroids = 8;
    options.quantize_int8 = true;
    const LutLayer layer = convertLinearLayer(w, {}, calib, options);

    Tensor input(32, 16);
    input.fillGaussian(rng);
    const IndexMatrix idx = layer.closestCentroidSearch(input);

    LutMapping mapping;
    mapping.ns_tile = 8;
    mapping.fs_tile = 12;
    mapping.nm_tile = 8;
    mapping.fm_tile = 4;
    mapping.cbm_tile = 8;
    mapping.scheme = LutLoadScheme::FineGrain;

    FaultConfig config;
    config.seed = 61;
    config.pe_transient_rate = 0.2;
    config.pe_hard_fail_rate = 0.1;
    FaultInjector faults(config);
    const Tensor reference = layer.lookup(idx);

    // The executor's internal parallelFor runs the resilient ladder
    // across simulated PEs; concurrent outer calls stress the shared
    // injector, metrics, and trace state at once.
    onThreads([&](std::size_t) {
        const DistributedLutResult result = runDistributedLut(
            upmemPlatform(), layer, idx, mapping,
            /*quantized=*/false, &faults);
        ASSERT_FALSE(result.fault.host_fallback);
        EXPECT_LT(maxAbsDiff(result.output, reference), 1e-4f);
    });
}

TEST(ConcurrencyStress, MpmcCloseRacesPushAndPop)
{
    // The drain path closes the request/work queues while submitters
    // and workers are mid push/pop; the queue contract is that no
    // accepted item is ever lost to the close. 4 pushers x 4 poppers
    // race a closer and the accounting must balance exactly.
    constexpr std::size_t kPushers = 4;
    constexpr std::size_t kPoppers = 4;
    constexpr std::size_t kPerPusher = 256;
    for (int iteration = 0; iteration < 8; ++iteration) {
        BoundedMpmcQueue<std::size_t> queue(16);
        std::atomic<std::size_t> pushed{0};
        std::atomic<std::size_t> popped{0};
        std::atomic<bool> closed{false};

        std::vector<std::thread> pool;
        for (std::size_t p = 0; p < kPushers; ++p) {
            pool.emplace_back([&]() {
                for (std::size_t i = 0; i < kPerPusher; ++i) {
                    std::size_t item = i;
                    if (queue.tryPushOrKeep(item))
                        pushed.fetch_add(1, std::memory_order_relaxed);
                    else if (queue.closed())
                        return; // producers stop at close
                }
            });
        }
        for (std::size_t c = 0; c < kPoppers; ++c) {
            pool.emplace_back([&]() {
                std::size_t item = 0;
                // pop() returns false only once closed *and* empty,
                // so this drains everything accepted before close.
                while (queue.pop(item))
                    popped.fetch_add(1, std::memory_order_relaxed);
            });
        }
        pool.emplace_back([&]() {
            // Close mid-flight: yield a few times so pushes and pops
            // are in progress on most schedules.
            for (int y = 0; y < 50; ++y)
                std::this_thread::yield();
            queue.close();
            closed.store(true, std::memory_order_release);
        });
        for (std::thread &t : pool)
            t.join();

        EXPECT_TRUE(closed.load());
        EXPECT_EQ(popped.load(), pushed.load())
            << "every accepted item must be drained, none duplicated";
        EXPECT_TRUE(queue.empty());
        std::size_t leftover = 0;
        EXPECT_FALSE(queue.pop(leftover));
    }
}

TEST(ConcurrencyStress, MpmcTryPushOrKeepPreservesRejectedValue)
{
    // tryPush takes by value, so a rejected unique_ptr would be
    // destroyed; tryPushOrKeep must leave it intact for rerouting
    // (the watchdog re-dispatch depends on this).
    BoundedMpmcQueue<std::unique_ptr<int>> queue(1);
    auto first = std::make_unique<int>(1);
    ASSERT_TRUE(queue.tryPushOrKeep(first));
    EXPECT_EQ(first, nullptr) << "accepted items are moved in";

    auto second = std::make_unique<int>(2);
    EXPECT_FALSE(queue.tryPushOrKeep(second)) << "queue is full";
    ASSERT_NE(second, nullptr) << "rejected items must survive";
    EXPECT_EQ(*second, 2);

    queue.close();
    auto third = std::make_unique<int>(3);
    EXPECT_FALSE(queue.tryPushOrKeep(third));
    ASSERT_NE(third, nullptr) << "closed-queue rejects must survive";
}

} // namespace
} // namespace pimdl
