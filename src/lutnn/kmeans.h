/**
 * @file
 * K-means clustering with k-means++ seeding.
 *
 * LUT-NN conversion derives each codebook by clustering activation
 * sub-vectors (paper Section 3.1, step 1). This is the from-scratch
 * clustering substrate used by the converter.
 */

#ifndef PIMDL_LUTNN_KMEANS_H
#define PIMDL_LUTNN_KMEANS_H

#include <cstddef>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace pimdl {

/** Options controlling a k-means run. */
struct KMeansOptions
{
    /** Number of clusters (the paper's CT). */
    std::size_t clusters = 16;
    /** Maximum Lloyd iterations. */
    std::size_t max_iters = 25;
    /** Convergence threshold on total centroid movement. */
    float tolerance = 1e-6f;
    /** Seed for k-means++ initialization. */
    std::uint64_t seed = 1;
};

/** Result of a k-means run. */
struct KMeansResult
{
    /** clusters x dim centroid matrix. */
    Tensor centroids;
    /** Per-sample assignment indices. */
    std::vector<std::size_t> assignments;
    /** Final within-cluster sum of squared distances. */
    double inertia = 0.0;
    /** Number of Lloyd iterations executed. */
    std::size_t iterations = 0;
};

/**
 * Clusters the rows of @p samples (num_samples x dim).
 *
 * Empty clusters are re-seeded with the sample farthest from its centroid
 * so the result always contains exactly options.clusters centroids.
 */
KMeansResult kmeans(const Tensor &samples, const KMeansOptions &options);

/** Returns the index of the centroid (row of @p centroids) nearest @p v. */
std::size_t nearestCentroid(const float *v, const Tensor &centroids);

} // namespace pimdl

#endif // PIMDL_LUTNN_KMEANS_H
