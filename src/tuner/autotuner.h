/**
 * @file
 * The PIM-DL Auto-Tuner (paper Section 5.3, Algorithm 1): exhaustively
 * walks the legal sub-LUT tiling factors, searches each micro-kernel
 * mapping space (tiling factors x traversal order x load scheme), and
 * returns the minimum-latency mapping under the analytical cost model.
 */

#ifndef PIMDL_TUNER_AUTOTUNER_H
#define PIMDL_TUNER_AUTOTUNER_H

#include <vector>

#include "tuner/cost_model.h"

namespace pimdl {

/** Outcome of an auto-tuning run. */
struct AutoTuneResult
{
    bool found = false;
    LutMapping mapping;
    LutCostBreakdown cost;
    /** Number of candidate mappings evaluated. */
    std::size_t evaluated = 0;
};

/** Options bounding the tuner's search. */
struct AutoTuneOptions
{
    /** Restrict tile factor candidates to powers of two. */
    bool power_of_two_tiles = true;
    /** Require the mapping to occupy every platform PE (Eq. 5). */
    bool require_full_pe_use = false;
    /** Restrict the search to one load scheme (for ablations). */
    bool fix_scheme = false;
    LutLoadScheme scheme = LutLoadScheme::CoarseGrain;
    /**
     * Cap on the number of tile-factor candidates per dimension; large
     * lists are thinned (endpoints kept) to bound Algorithm 1's walk.
     */
    std::size_t max_tile_candidates = 8;
};

/** Offline mapping search for LUT operators on a DRAM-PIM platform. */
class AutoTuner
{
  public:
    explicit AutoTuner(PimPlatformConfig platform,
                       AutoTuneOptions options = {});

    /** Algorithm 1: full search over P1-P4. */
    AutoTuneResult tune(const LutWorkloadShape &shape) const;

    /**
     * KernelSearch of Algorithm 1: best micro-kernel mapping for a fixed
     * sub-LUT tiling (ns_tile, fs_tile).
     */
    AutoTuneResult kernelSearch(const LutWorkloadShape &shape,
                                std::size_t ns_tile,
                                std::size_t fs_tile) const;

    /** Legal (ns_tile, fs_tile) pairs for the shape on this platform. */
    std::vector<std::pair<std::size_t, std::size_t>>
    legalSubLutTilings(const LutWorkloadShape &shape) const;

    const PimPlatformConfig &platform() const { return platform_; }

    /**
     * Injects a timing model for candidate evaluation; nullptr restores
     * the built-in analytical model (evaluateLutMapping), which is also
     * the default. The pointer is not owned and must outlive the tuner.
     * Command-level models cost orders of magnitude more per candidate
     * than the closed form, so engines keep the analytical model as the
     * search proxy and re-cost only the chosen mapping under the active
     * backend (DESIGN.md Section 12).
     */
    void setTimingModel(const LutTimingModel *timing) { timing_ = timing; }
    const LutTimingModel *timingModel() const { return timing_; }

  private:
    PimPlatformConfig platform_;
    AutoTuneOptions options_;
    const LutTimingModel *timing_ = nullptr;

    /** Candidate cost under the injected or built-in timing model. */
    LutCostBreakdown evaluateCandidate(const LutWorkloadShape &shape,
                                       const LutMapping &mapping) const;

    /** Complete (pow2-filtered) divisor list for sub-LUT factors. */
    std::vector<std::size_t> subLutCandidates(std::size_t total) const;

    /** Thinned candidate list for micro-kernel tile factors. */
    std::vector<std::size_t> tileCandidates(std::size_t total) const;
};

} // namespace pimdl

#endif // PIMDL_TUNER_AUTOTUNER_H
