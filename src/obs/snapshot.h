/**
 * @file
 * One-call export of the whole observability state: every metric in the
 * registry plus flight-recorder occupancy, as a single JSON document.
 * This is the machine-readable artifact a bench run leaves behind
 * (--metrics-out) and the object CI asserts required keys against.
 */

#ifndef PIMDL_OBS_SNAPSHOT_H
#define PIMDL_OBS_SNAPSHOT_H

#include <string>

namespace pimdl {
namespace obs {

/** Schema identifier embedded in every snapshot. */
inline constexpr const char *kSnapshotSchema = "pimdl.metrics.v1";

/**
 * Serializes the current process observability state:
 * {"schema":"pimdl.metrics.v1","counters":{...},"gauges":{...},
 *  "histograms":{name:{count,sum,min,max,mean,p50,p95,p99}},
 *  "trace":{"recorded":N,"retained":M,"dropped":D}}.
 */
std::string snapshotJson();

/** Writes snapshotJson() to @p path; throws on I/O failure. */
void writeSnapshotJson(const std::string &path);

/** Writes the flight recorder's Chrome trace JSON to @p path. */
void writeChromeTrace(const std::string &path);

/** Zeroes all metrics and clears the flight recorder. */
void resetAll();

} // namespace obs
} // namespace pimdl

#endif // PIMDL_OBS_SNAPSHOT_H
