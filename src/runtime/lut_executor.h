/**
 * @file
 * Functional distributed execution of a LUT operator across simulated
 * DRAM-PIM PEs under a sub-LUT partition (paper Figure 8-(a)), paired
 * with the analytical latency of the mapping.
 *
 * The PE computation is bit-faithful: each PE owns its (ns_tile x
 * fs_tile) output tile, receives the broadcast index tile of its group
 * and the LUT tile of its lane, and reduces locally — exactly the
 * dataflow the partition scheme prescribes (no inter-PE traffic, no
 * partial-sum merging on the host).
 *
 * Execution is optionally fault-aware (src/fault): a seed-driven
 * injector can kill PEs, crash kernel attempts, flip bits in resident
 * LUT tiles, and corrupt or stall host<->PIM transfers. The resilient
 * ladder — per-PE output-tile checksum verification, capped
 * exponential-backoff retries, degraded re-scheduling of tiles owned by
 * dead PEs onto survivors (plan/schedule.h), and finally a host
 * fallback — guarantees the assembled output stays bit-exact versus
 * fault-free execution while the stall/retry/remap cost lands in the
 * analytical timing as FaultReport::added_latency_s.
 */

#ifndef PIMDL_RUNTIME_LUT_EXECUTOR_H
#define PIMDL_RUNTIME_LUT_EXECUTOR_H

#include "fault/fault.h"
#include "lutnn/lut_layer.h"
#include "tuner/cost_model.h"

namespace pimdl {

/** Result of one distributed LUT execution. */
struct DistributedLutResult
{
    /** N x F output assembled from the per-PE tiles. */
    Tensor output;
    /** Analytical latency/traffic breakdown for the mapping. */
    LutCostBreakdown cost;
    /** PEs the partition occupied. */
    std::size_t pes_used = 0;
    /** Fault outcome of this execution (empty when fault-free). */
    FaultReport fault;

    /** Modeled wall time including fault stall/retry/remap terms. */
    double
    modelSeconds() const
    {
        return cost.total() + fault.added_latency_s;
    }
};

/**
 * Runs @p layer's LUT operator for @p indices on the simulated platform
 * under @p mapping. When @p quantized is true the PEs reduce the INT8
 * LUT with INT32 accumulators (the UPMEM deployment mode).
 *
 * When @p faults is non-null, execution runs through the resilient
 * ladder under @p retry; with all rates zero and no forced kills the
 * output (and the analytical cost) is bit-identical to a fault-free
 * run.
 *
 * Throws (via PIMDL_REQUIRE) if the mapping is illegal for the shape.
 */
DistributedLutResult runDistributedLut(const PimPlatformConfig &platform,
                                       const LutLayer &layer,
                                       const IndexMatrix &indices,
                                       const LutMapping &mapping,
                                       bool quantized,
                                       const FaultInjector *faults = nullptr,
                                       const RetryPolicy &retry = {});

/** Builds the tuner workload shape for a LUT layer and row count. */
LutWorkloadShape lutShapeFor(const LutLayer &layer, std::size_t rows);

} // namespace pimdl

#endif // PIMDL_RUNTIME_LUT_EXECUTOR_H
