file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_roofline.dir/bench_fig4_roofline.cc.o"
  "CMakeFiles/bench_fig4_roofline.dir/bench_fig4_roofline.cc.o.d"
  "bench_fig4_roofline"
  "bench_fig4_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
