/**
 * @file
 * Differentiable operators for the PIM-DL autograd tape.
 *
 * Includes the two LUT-NN-specific ops from the paper:
 *  - centroidAssign: hard nearest-centroid replacement with a
 *    Straight-Through Estimator backward (Eq. 2), used by eLUT-NN.
 *  - softAssign: temperature-softened (Gumbel-softmax style) assignment
 *    used to reproduce the baseline LUT-NN calibration algorithm.
 */

#ifndef PIMDL_AUTOGRAD_OPS_H
#define PIMDL_AUTOGRAD_OPS_H

#include <vector>

#include "autograd/variable.h"

namespace pimdl {
namespace ag {

/** C = A (n,h) * B (h,f). */
Variable matmul(Variable a, Variable b);

/** Elementwise sum of equal-shaped tensors. */
Variable add(Variable a, Variable b);

/** Elementwise difference a - b. */
Variable sub(Variable a, Variable b);

/** Adds a 1 x F bias row to every row of x. */
Variable addRowBroadcast(Variable x, Variable bias);

/** Multiplies every element by the constant @p s. */
Variable mulScalar(Variable x, float s);

/** Tanh-approximated GELU. */
Variable gelu(Variable x);

/** Rectified linear unit. */
Variable relu(Variable x);

/** Numerically stable softmax over each row. */
Variable rowSoftmax(Variable x);

/** Row-wise layer normalization; gamma/beta are 1 x F leaves. */
Variable layerNorm(Variable x, Variable gamma, Variable beta,
                   float epsilon = 1e-5f);

/** Matrix transpose. */
Variable transpose(Variable x);

/** Column slice x[:, begin:end) (multi-head attention splitting). */
Variable colSlice(Variable x, std::size_t begin, std::size_t end);

/** Concatenates equal-row-count tensors along columns (head merge). */
Variable concatCols(const std::vector<Variable> &parts);

/** Column means: n x f -> 1 x f. */
Variable meanRows(Variable x);

/** Mean squared error between equal-shaped tensors (scalar output). */
Variable mseLoss(Variable a, Variable b);

/** Sum of squared differences ||a - b||^2 (scalar output; Eq. 1 term). */
Variable sumSquaredDiff(Variable a, Variable b);

/**
 * Mean softmax cross-entropy over rows of @p logits against integer
 * @p labels. Scalar output.
 */
Variable softmaxCrossEntropy(Variable logits,
                             const std::vector<std::size_t> &labels);

/**
 * Hard nearest-centroid replacement H(A) with STE backward.
 *
 * @param x          n x (cb*v) activations.
 * @param centroids  (cb*ct) x v centroid leaf; row (i*ct + j) is centroid
 *                   j of codebook i.
 * Forward replaces each length-v sub-vector with its nearest centroid.
 * Backward: gradient w.r.t. x passes through unchanged (STE); gradient
 * w.r.t. each centroid accumulates the output grads of the sub-vectors it
 * was assigned to.
 */
Variable centroidAssign(Variable x, Variable centroids, std::size_t cb,
                        std::size_t ct, std::size_t v);

/**
 * Soft assignment (baseline LUT-NN): each sub-vector is replaced by the
 * softmax(-d^2 / temperature)-weighted mix of centroids, which is fully
 * differentiable but mismatches the hard assignment used at deployment.
 */
Variable softAssign(Variable x, Variable centroids, std::size_t cb,
                    std::size_t ct, std::size_t v, float temperature);

} // namespace ag
} // namespace pimdl

#endif // PIMDL_AUTOGRAD_OPS_H
