#!/usr/bin/env python3
"""Gate benchmark results against a checked-in baseline.

Supports two run schemas, auto-detected from the "schema" field:

* pimdl.bench.kernels.v1 (from `bench_kernels --json`): every
  (kernel, impl, shape) entry's ns/op is compared against
  bench/baselines/kernels.json; lower is better and the build fails
  when any entry regresses by more than the tolerance (default 25%).

* pimdl.bench.serving.v1 (from `bench_serving_live --json`): every
  scenario's goodput fraction (in-deadline completions / admitted
  requests — robust to machine speed where raw rps is not) is compared
  against bench/baselines/serving.json; higher is better and the build
  fails when any scenario's fraction drops by more than the tolerance.

* pimdl.bench.transfer.v1 (from `bench_transfer --json`): every
  higher-is-better transfer-engine scalar (achieved GB/s at fixed
  burst sizes, coalescing speedup, resident-LUT hit rate, overlap
  fraction, end-to-end speedup — all model-derived and deterministic)
  is compared against bench/baselines/transfer.json; the build fails
  when any entry drops by more than the tolerance.

Entries present in the run but absent from the baseline are reported
and accepted (new kernels / scenarios land with their first measurement
via --update); entries present in the baseline but missing from the run
fail, so a silently dropped impl or scenario cannot pass the gate.

Usage: check_bench.py <run.json> [--baseline <baseline.json>]
                      [--tolerance <fraction>] [--update]
                      [--summary <out.md>] [--summary-only]

--update rewrites the baseline from the run instead of gating (used by
`[bench-rebase]` commits and when recording a new machine profile).

--summary writes a GitHub-flavoured markdown table suitable for
$GITHUB_STEP_SUMMARY. --summary-only writes it and skips the gate
(used by jobs that publish results without owning the baseline).
"""

import argparse
import json
import shutil
import sys

KERNELS_SCHEMA = "pimdl.bench.kernels.v1"
SERVING_SCHEMA = "pimdl.bench.serving.v1"
TRANSFER_SCHEMA = "pimdl.bench.transfer.v1"

# Per-schema gating profile: entry key fields, the gated metric, which
# direction is better, and the default baseline location.
PROFILES = {
    KERNELS_SCHEMA: {
        "key_fields": ("kernel", "impl", "shape"),
        "metric": "ns_per_op",
        "better": "lower",
        "unit": "ns/op",
        "baseline": "bench/baselines/kernels.json",
    },
    SERVING_SCHEMA: {
        "key_fields": ("scenario",),
        "metric": "goodput_frac",
        "better": "higher",
        "unit": "goodput frac",
        "baseline": "bench/baselines/serving.json",
    },
    TRANSFER_SCHEMA: {
        "key_fields": ("entry",),
        "metric": "value",
        "better": "higher",
        "unit": "value",
        "baseline": "bench/baselines/transfer.json",
    },
}


def fail(message):
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path, expect_schema=None):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot load {path}: {exc}")
    schema = doc.get("schema")
    if expect_schema is not None and schema != expect_schema:
        fail(f"{path}: schema mismatch: {schema!r} != {expect_schema!r}")
    profile = PROFILES.get(schema)
    if profile is None:
        fail(
            f"{path}: unknown schema {schema!r} "
            f"(supported: {sorted(PROFILES)})"
        )
    entries = {}
    for entry in doc.get("entries", []):
        key = tuple(entry[f] for f in profile["key_fields"])
        if key in entries:
            fail(f"{path}: duplicate entry {key}")
        entries[key] = entry
    if not entries:
        fail(f"{path}: no entries")
    return schema, entries


def write_kernels_summary(path, entries):
    lines = [
        "### Kernel micro-benchmarks",
        "",
        "| kernel | shape | impl | ns/op | GB/s | GOPS | vs scalar |",
        "|---|---|---|---:|---:|---:|---:|",
    ]
    for key in sorted(entries):
        e = entries[key]
        lines.append(
            f"| {e['kernel']} | {e['shape']} | {e['impl']} "
            f"| {e['ns_per_op']:.1f} | {e['gb_per_s']:.2f} "
            f"| {e['gops']:.2f} | {e['speedup_vs_scalar']:.2f}x |"
        )
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def write_serving_summary(path, entries):
    lines = [
        "### Live serving benchmark",
        "",
        "| scenario | workers | requests | offered rps | p50 ms "
        "| p95 ms | p99 ms | goodput rps | goodput frac | shed "
        "| model err |",
        "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for key in sorted(entries):
        e = entries[key]
        lines.append(
            f"| {e['scenario']} | {e['workers']} | {e['requests']} "
            f"| {e['offered_rps']:.0f} | {e['p50_ms']:.2f} "
            f"| {e['p95_ms']:.2f} | {e['p99_ms']:.2f} "
            f"| {e['goodput_rps']:.0f} | {e['goodput_frac']:.3f} "
            f"| {e['shed_frac']:.3f} "
            f"| {e['analytical_err_frac'] * 100.0:.1f}% |"
        )
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def write_transfer_summary(path, entries):
    lines = [
        "### Transfer-engine benchmark",
        "",
        "| entry | value |",
        "|---|---:|",
    ]
    for key in sorted(entries):
        e = entries[key]
        lines.append(f"| {e['entry']} | {e['value']:.4f} |")
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def write_summary(path, schema, entries):
    if schema == KERNELS_SCHEMA:
        write_kernels_summary(path, entries)
    elif schema == TRANSFER_SCHEMA:
        write_transfer_summary(path, entries)
    else:
        write_serving_summary(path, entries)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("run")
    parser.add_argument("--baseline")
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--update", action="store_true")
    parser.add_argument("--summary")
    parser.add_argument("--summary-only", action="store_true")
    args = parser.parse_args()

    schema, run = load(args.run)
    profile = PROFILES[schema]
    baseline_path = args.baseline or profile["baseline"]

    if args.summary:
        write_summary(args.summary, schema, run)

    if args.summary_only:
        if not args.summary:
            fail("--summary-only requires --summary <out.md>")
        print(f"check_bench: summary written ({len(run)} entries, "
              "gate skipped)")
        return

    if args.update:
        shutil.copyfile(args.run, baseline_path)
        print(f"check_bench: baseline {baseline_path} updated "
              f"({len(run)} entries)")
        return

    _, baseline = load(baseline_path, expect_schema=schema)

    metric = profile["metric"]
    unit = profile["unit"]
    lower_better = profile["better"] == "lower"
    regressions = []
    new_entries = []
    for key, entry in sorted(run.items()):
        base = baseline.get(key)
        if base is None:
            new_entries.append(key)
            continue
        if base[metric] <= 0:
            fail(f"baseline entry {key} has non-positive {metric}")
        ratio = entry[metric] / base[metric]
        regressed = (
            ratio > 1.0 + args.tolerance
            if lower_better
            else ratio < 1.0 - args.tolerance
        )
        marker = "  <-- REGRESSION" if regressed else ""
        if regressed:
            regressions.append((key, base[metric], entry[metric], ratio))
        print(
            f"check_bench: {'/'.join(key)}: "
            f"{base[metric]:.3f} -> {entry[metric]:.3f} {unit} "
            f"({ratio:.2f}x){marker}"
        )

    for key in new_entries:
        print(f"check_bench: NEW {'/'.join(key)} "
              "(not in baseline, accepted)")

    missing = sorted(set(baseline) - set(run))
    if missing:
        fail(
            "baseline entries missing from run (dropped impl, shape, "
            "or scenario?): " + ", ".join("/".join(k) for k in missing)
        )

    if regressions:
        bound = (
            f"{1.0 + args.tolerance:.2f}x allowed"
            if lower_better
            else f"{1.0 - args.tolerance:.2f}x floor"
        )
        for key, base_v, run_v, ratio in regressions:
            print(
                f"check_bench: REGRESSION {'/'.join(key)}: "
                f"{base_v:.3f} -> {run_v:.3f} {unit} "
                f"({ratio:.2f}x vs {bound})",
                file=sys.stderr,
            )
        fail(
            f"{len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'}"
            f" regressed beyond {args.tolerance:.0%}; rerun with --update "
            "(or land with [bench-rebase] in the commit message) if the "
            "change is intentional"
        )

    print(f"check_bench: OK ({len(run)} entries, tolerance "
          f"{args.tolerance:.0%})")


if __name__ == "__main__":
    main()
