/**
 * @file
 * BERT serving estimator: plans PIM-DL deployment of BERT-base/large on
 * all three commodity DRAM-PIM platforms, printing per-linear-layer
 * mappings, the latency/energy breakdown, and the comparison against
 * CPU and GEMM-offload baselines.
 *
 * Usage: bert_serving_estimator [base|large] [V] [CT]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "runtime/engine.h"

using namespace pimdl;

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "base";
    LutNnParams params;
    params.subvec_len = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    params.centroids = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 16;

    const TransformerConfig model =
        which == "large" ? bertLarge() : bertBase();
    std::cout << "Serving plan for " << model.name << " (batch "
              << model.batch << ", seq " << model.seq_len << ", V="
              << params.subvec_len << ", CT=" << params.centroids
              << ")\n\n";

    // UPMEM deployment with per-layer detail.
    {
        PimDlEngine engine(upmemPlatform(), xeon4210Dual());
        const InferenceEstimate est = engine.estimatePimDl(model, params);

        printBanner(std::cout, "UPMEM PIM-DIMM deployment");
        TablePrinter table({"Layer", "CCS (s)", "LUT (s)", "Mapping"});
        for (const LinearLatency &l : est.per_linear) {
            table.addRow({linearRoleName(l.role),
                          TablePrinter::fmt(l.ccs_s, 3),
                          TablePrinter::fmt(l.lut_s, 3),
                          l.mapping.describe()});
        }
        table.print(std::cout);
        std::cout << "\nTotal " << TablePrinter::fmt(est.total_s, 2)
                  << " s  (LUT " << TablePrinter::fmt(est.lut_s, 2)
                  << ", CCS " << TablePrinter::fmt(est.ccs_s, 2)
                  << ", attention " << TablePrinter::fmt(est.attention_s, 2)
                  << ", other " << TablePrinter::fmt(est.other_s, 2)
                  << ")\nThroughput "
                  << TablePrinter::fmt(est.throughput(model.batch), 2)
                  << " inferences/s, energy "
                  << TablePrinter::fmt(est.energy.total(), 0) << " J\n";

        const InferenceEstimate cpu = estimateHostInference(
            xeonGold5218Dual(), model, HostDtype::Int8);
        const InferenceEstimate gemm =
            engine.estimatePimGemm(model, HostDtype::Int8);
        std::cout << "vs CPU INT8: "
                  << TablePrinter::fmtRatio(cpu.total_s / est.total_s)
                  << ", vs GEMM-on-PIM: "
                  << TablePrinter::fmtRatio(gemm.total_s / est.total_s)
                  << "\n";
    }

    // Cross-platform summary.
    printBanner(std::cout, "Cross-platform summary");
    TablePrinter summary({"Platform", "PIM-DL (s)", "PIM-GEMM (s)",
                          "Speedup"});
    for (PimProduct product :
         {PimProduct::UpmemDimm, PimProduct::HbmPim, PimProduct::Aim}) {
        const PimPlatformConfig platform = platformFor(product);
        const HostProcessorConfig host =
            product == PimProduct::UpmemDimm ? xeon4210Dual() : a2Gpu();
        PimDlEngine engine(platform, host);
        const InferenceEstimate lut = engine.estimatePimDl(model, params);
        const InferenceEstimate gemm = engine.estimatePimGemm(
            model, product == PimProduct::UpmemDimm ? HostDtype::Int8
                                                    : HostDtype::Fp16);
        summary.addRow({platform.name, TablePrinter::fmt(lut.total_s, 2),
                        TablePrinter::fmt(gemm.total_s, 2),
                        TablePrinter::fmtRatio(gemm.total_s /
                                               lut.total_s)});
    }
    summary.print(std::cout);
    return 0;
}
