#include "lut_executor.h"

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pimdl {

LutWorkloadShape
lutShapeFor(const LutLayer &layer, std::size_t rows)
{
    LutWorkloadShape shape;
    shape.n = rows;
    shape.cb = layer.shape().codebooks();
    shape.ct = layer.shape().centroids;
    shape.f = layer.shape().output_dim;
    return shape;
}

DistributedLutResult
runDistributedLut(const PimPlatformConfig &platform, const LutLayer &layer,
                  const IndexMatrix &indices, const LutMapping &mapping,
                  bool quantized)
{
    const LutWorkloadShape shape = lutShapeFor(layer, indices.rows);
    std::string reason;
    PIMDL_REQUIRE(mappingIsLegal(platform, shape, mapping, &reason),
                  "illegal mapping: " + reason);
    PIMDL_REQUIRE(!quantized || layer.hasQuantizedTables(),
                  "quantized run requires quantizeTables()");

    DistributedLutResult result;
    result.cost = evaluateLutMapping(platform, shape, mapping);
    result.pes_used = mapping.totalPes(shape);

    const std::size_t groups = mapping.groups(shape);
    const std::size_t lanes = mapping.pesPerGroup(shape);
    const std::size_t cb = shape.cb;

    // Flight-recorder span + registry counters for this execution. One
    // registry lookup per call (never per PE); PE-side increments go
    // through cached lock-free counters.
    obs::TraceSpan span("lut.runDistributedLut");
    span.attr("n", static_cast<std::uint64_t>(shape.n));
    span.attr("f", static_cast<std::uint64_t>(shape.f));
    span.attr("cb", static_cast<std::uint64_t>(cb));
    span.attr("pes", static_cast<std::uint64_t>(result.pes_used));
    span.attr("model_s", result.cost.total());

    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    static obs::Counter &runs = reg.counter("lut.runs");
    static obs::Counter &pe_kernels = reg.counter("lut.pe_kernels");
    static obs::Counter &link_bytes = reg.counter("lut.link_bytes");
    static obs::Counter &stream_bytes = reg.counter("lut.pe_stream_bytes");
    static obs::Counter &cycles = reg.counter("lut.model_cycles");
    static obs::Histogram &model_latency =
        reg.histogram("lut.model_latency_s");

    runs.add();
    pe_kernels.add(groups * lanes);
    link_bytes.add(static_cast<std::uint64_t>(result.cost.link_bytes));
    stream_bytes.add(static_cast<std::uint64_t>(
        result.cost.pe_stream_bytes * static_cast<double>(result.pes_used)));
    // Modeled PE cycles: lock-step PEs each spend total() seconds at the
    // platform clock.
    cycles.add(static_cast<std::uint64_t>(result.cost.microKernelTotal() *
                                          platform.pe_freq_hz));
    model_latency.record(result.cost.total());

    result.output = Tensor(shape.n, shape.f);
    Tensor &out = result.output;

    // Each simulated PE (group g, lane l) reduces its own tile.
    parallelFor(groups * lanes, [&](std::size_t pe) {
        const std::size_t g = pe / lanes;
        const std::size_t l = pe % lanes;
        const std::size_t row0 = g * mapping.ns_tile;
        const std::size_t col0 = l * mapping.fs_tile;

        if (quantized) {
            // INT8 LUT entries, INT32 on-PE accumulators; the host
            // dequantizes after gathering.
            const float scale = layer.quantScale();
            std::vector<std::int32_t> acc(mapping.fs_tile);
            for (std::size_t r = 0; r < mapping.ns_tile; ++r) {
                std::fill(acc.begin(), acc.end(), 0);
                for (std::size_t c = 0; c < cb; ++c) {
                    const std::size_t idx = indices.at(row0 + r, c);
                    for (std::size_t fcol = 0; fcol < mapping.fs_tile;
                         ++fcol)
                        acc[fcol] += layer.quantLutValue(c, idx,
                                                         col0 + fcol);
                }
                float *dst = out.rowPtr(row0 + r) + col0;
                for (std::size_t fcol = 0; fcol < mapping.fs_tile; ++fcol)
                    dst[fcol] = static_cast<float>(acc[fcol]) * scale;
            }
        } else {
            for (std::size_t r = 0; r < mapping.ns_tile; ++r) {
                float *dst = out.rowPtr(row0 + r) + col0;
                for (std::size_t c = 0; c < cb; ++c) {
                    const std::size_t idx = indices.at(row0 + r, c);
                    for (std::size_t fcol = 0; fcol < mapping.fs_tile;
                         ++fcol)
                        dst[fcol] += layer.lutValue(c, idx, col0 + fcol);
                }
            }
        }
    });

    // Bias is applied host-side after gathering (element-wise op).
    if (!layer.bias().empty()) {
        for (std::size_t r = 0; r < out.rows(); ++r) {
            float *dst = out.rowPtr(r);
            for (std::size_t fcol = 0; fcol < out.cols(); ++fcol)
                dst[fcol] += layer.bias()[fcol];
        }
    }
    return result;
}

} // namespace pimdl
