file(REMOVE_RECURSE
  "libpimdl_common.a"
)
