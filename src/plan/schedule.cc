#include "plan/schedule.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace pimdl {

const char *
schedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
    case SchedulePolicy::Sequential:
        return "sequential";
    case SchedulePolicy::Pipelined:
        return "pipelined";
    case SchedulePolicy::Overlap:
        return "overlap";
    }
    return "unknown";
}

namespace {

/**
 * Schedule-independent accounting: component buckets, device busy time,
 * link traffic, and per-role linear detail. Only total_s is left for
 * the concrete scheduler to fill in.
 */
InferenceEstimate
accumulate(const CostedPlan &costed)
{
    PIMDL_REQUIRE(costed.costs.size() == costed.plan.nodes.size(),
                  "costed plan has mismatched node/cost arrays");

    InferenceEstimate est;
    for (std::size_t i = 0; i < costed.plan.nodes.size(); ++i) {
        const PlanNode &node = costed.plan.nodes[i];
        const NodeCost &cost = costed.costs[i];

        switch (node.kind) {
        case PlanOpKind::Ccs:
            est.ccs_s += cost.seconds;
            est.linear_s += cost.seconds;
            break;
        case PlanOpKind::LutOp:
            est.lut_s += cost.seconds;
            est.linear_s += cost.seconds;
            break;
        case PlanOpKind::Gemm:
            est.linear_s += cost.seconds;
            break;
        case PlanOpKind::Attention:
            est.attention_s += cost.seconds;
            break;
        case PlanOpKind::Elementwise:
            est.other_s += cost.seconds;
            break;
        case PlanOpKind::HostPimTransfer:
            break;
        }
        est.link_bytes += cost.link_bytes;

        if (node.device == PlanDevice::Host)
            est.host_busy_s += cost.seconds;
        else if (node.device == PlanDevice::Pim)
            est.pim_busy_s += cost.seconds;

        if (node.has_role && (node.kind == PlanOpKind::Ccs ||
                              node.kind == PlanOpKind::LutOp)) {
            auto it = std::find_if(
                est.per_linear.begin(), est.per_linear.end(),
                [&](const LinearLatency &l) { return l.role == node.role; });
            if (it == est.per_linear.end()) {
                LinearLatency entry;
                entry.role = node.role;
                est.per_linear.push_back(entry);
                it = est.per_linear.end() - 1;
            }
            if (node.kind == PlanOpKind::Ccs) {
                it->ccs_s += cost.seconds;
            } else {
                it->lut_s += cost.seconds;
                if (node.mapping_attached)
                    it->mapping = node.mapping;
            }
        }
    }
    return est;
}

/** A serial step: one node occupying its device for its full latency. */
ScheduleStep
serialStep(const PlanNode &node, const NodeCost &cost)
{
    ScheduleStep step;
    if (node.device == PlanDevice::Pim)
        step.pim_s = cost.seconds;
    else
        step.host_s = cost.seconds;
    step.total_s = cost.seconds;
    return step;
}

} // namespace

ScheduleResult
SequentialScheduler::schedule(const CostedPlan &costed) const
{
    ScheduleResult result;
    result.estimate = accumulate(costed);

    double total = 0.0;
    result.steps.reserve(costed.plan.nodes.size());
    for (std::size_t i = 0; i < costed.plan.nodes.size(); ++i) {
        total += costed.costs[i].seconds;
        result.steps.push_back(
            serialStep(costed.plan.nodes[i], costed.costs[i]));
    }
    result.estimate.total_s = total;
    return result;
}

ScheduleResult
PipelinedScheduler::schedule(const CostedPlan &costed) const
{
    ScheduleResult result;
    result.estimate = accumulate(costed);

    // Double-buffered CCS/LUT overlap: with two index/output buffers in
    // flight, the host computes layer i+1's CCS while the PIM reduces
    // layer i's LUTs, so the LUT-NN window costs max(sum CCS, sum LUT).
    // Every other node (attention, elementwise, dense GEMMs, on either
    // device) stays on the critical path and runs serially.
    double host_window = 0.0;
    double pim_window = 0.0;
    double serial = 0.0;
    std::vector<ScheduleStep> serial_steps;
    for (std::size_t i = 0; i < costed.plan.nodes.size(); ++i) {
        const PlanNode &node = costed.plan.nodes[i];
        const NodeCost &cost = costed.costs[i];
        if (node.kind == PlanOpKind::Ccs) {
            host_window += cost.seconds;
        } else if (node.kind == PlanOpKind::LutOp) {
            pim_window += cost.seconds;
        } else if (node.kind != PlanOpKind::HostPimTransfer) {
            serial += cost.seconds;
            serial_steps.push_back(serialStep(node, cost));
        }
    }

    if (host_window > 0.0 || pim_window > 0.0) {
        ScheduleStep overlapped;
        overlapped.host_s = host_window;
        overlapped.pim_s = pim_window;
        overlapped.total_s = std::max(host_window, pim_window);
        result.steps.push_back(overlapped);
    }
    result.steps.insert(result.steps.end(), serial_steps.begin(),
                        serial_steps.end());

    result.estimate.total_s =
        std::max(host_window, pim_window) + serial;
    return result;
}

OverlapScheduler::OverlapScheduler(std::size_t waves) : waves_(waves)
{
    PIMDL_REQUIRE(waves_ >= 1, "overlap scheduler needs >= 1 wave");
}

ScheduleResult
OverlapScheduler::schedule(const CostedPlan &costed) const
{
    ScheduleResult result;
    result.estimate = accumulate(costed);

    // Greedy list-schedule of `waves_` independent copies of the plan
    // (consecutive in-flight forwards) over the two device resources.
    // Link transfers take zero time (their latency is folded into the
    // producing op's analytical cost) and only order the graph.
    const std::vector<PlanNode> &nodes = costed.plan.nodes;
    const std::size_t n = nodes.size();
    const std::size_t total_items = n * waves_;

    std::vector<double> finish(total_items, -1.0);
    auto item = [&](std::size_t wave, std::size_t node) {
        return wave * n + node;
    };

    double host_free = 0.0;
    double pim_free = 0.0;
    double makespan = 0.0;

    // Candidate order (node id, then wave) keeps earlier pipeline
    // stages ahead of later ones so successive waves interleave; with
    // chain-structured plans every item's predecessors come earlier in
    // this order, so a single pass schedules everything.
    for (std::size_t node_id = 0; node_id < n; ++node_id) {
        for (std::size_t wave = 0; wave < waves_; ++wave) {
            const PlanNode &node = nodes[node_id];
            double ready = 0.0;
            for (std::size_t dep : node.deps) {
                PIMDL_REQUIRE(finish[item(wave, dep)] >= 0.0,
                              "plan nodes are not topologically ordered");
                ready = std::max(ready, finish[item(wave, dep)]);
            }
            const double seconds = costed.costs[node_id].seconds;
            double start = ready;
            if (node.device == PlanDevice::Host) {
                start = std::max(ready, host_free);
                host_free = start + seconds;
            } else if (node.device == PlanDevice::Pim) {
                start = std::max(ready, pim_free);
                pim_free = start + seconds;
            }
            finish[item(wave, node_id)] = start + seconds;
            makespan = std::max(makespan, start + seconds);
        }
    }

    // Steady-state per-forward latency of a saturated pipeline: the
    // makespan amortized over the in-flight forwards.
    result.estimate.total_s =
        makespan / static_cast<double>(waves_);
    return result;
}

DegradedLutRemap
planDegradedLutRemap(const LutWorkloadShape &shape,
                     const LutMapping &mapping,
                     const std::vector<bool> &failed)
{
    DegradedLutRemap remap;
    remap.total_tiles = mapping.totalPes(shape);
    PIMDL_REQUIRE(failed.size() >= remap.total_tiles,
                  "failed-PE vector smaller than the mapping's PE pool");

    std::vector<std::size_t> healthy;
    healthy.reserve(remap.total_tiles);
    for (std::size_t pe = 0; pe < remap.total_tiles; ++pe) {
        if (!failed[pe])
            healthy.push_back(pe);
    }
    remap.healthy_pes = healthy.size();
    if (healthy.empty())
        return remap; // illegal: nothing left to execute on

    // Deal logical tiles to surviving PEs round-robin in ascending id
    // order: deterministic, and balanced to within one tile per PE.
    remap.tile_owner.resize(remap.total_tiles);
    for (std::size_t tile = 0; tile < remap.total_tiles; ++tile)
        remap.tile_owner[tile] = healthy[tile % healthy.size()];
    remap.waves =
        (remap.total_tiles + healthy.size() - 1) / healthy.size();
    remap.legal = true;
    return remap;
}

const Scheduler &
schedulerFor(SchedulePolicy policy)
{
    static const SequentialScheduler sequential;
    static const PipelinedScheduler pipelined;
    static const OverlapScheduler overlap;
    switch (policy) {
    case SchedulePolicy::Pipelined:
        return pipelined;
    case SchedulePolicy::Overlap:
        return overlap;
    case SchedulePolicy::Sequential:
        break;
    }
    return sequential;
}

} // namespace pimdl
