/** @file Optimizer tests: SGD and Adam converge on simple objectives. */

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "common/rng.h"

namespace pimdl {
namespace {

using ag::Variable;

/** Minimizes ||w - target||^2 and returns the final loss. */
template <typename Opt, typename... Args>
float
minimizeQuadratic(std::size_t steps, Args &&...args)
{
    Rng rng(40);
    Tensor init(2, 3);
    init.fillGaussian(rng);
    Variable w = Variable::leaf(init, true);
    Tensor target_t(2, 3);
    target_t.fill(1.5f);
    Variable target = Variable::leaf(target_t, false);

    Opt opt({w}, std::forward<Args>(args)...);
    float loss_v = 0.0f;
    for (std::size_t i = 0; i < steps; ++i) {
        opt.zeroGrad();
        Variable loss = ag::mseLoss(w, target);
        loss.backward();
        opt.step();
        loss_v = loss.value()(0, 0);
    }
    return loss_v;
}

TEST(Optimizer, SgdConverges)
{
    EXPECT_LT(minimizeQuadratic<ag::Sgd>(200, 0.2f, 0.0f), 1e-6f);
}

TEST(Optimizer, SgdMomentumConverges)
{
    EXPECT_LT(minimizeQuadratic<ag::Sgd>(200, 0.05f, 0.9f), 1e-5f);
}

TEST(Optimizer, AdamConverges)
{
    EXPECT_LT(minimizeQuadratic<ag::Adam>(400, 0.05f), 1e-4f);
}

TEST(Optimizer, ZeroGradClearsGradients)
{
    Variable w = Variable::leaf(Tensor(1, 1, {1.0f}), true);
    ag::Sgd opt({w}, 0.1f);
    Variable loss = ag::sumSquaredDiff(
        w, Variable::leaf(Tensor(1, 1), false));
    loss.backward();
    EXPECT_NE(w.grad()(0, 0), 0.0f);
    opt.zeroGrad();
    EXPECT_EQ(w.grad()(0, 0), 0.0f);
}

TEST(Optimizer, StepSkipsParamsWithoutGrads)
{
    Variable used = Variable::leaf(Tensor(1, 1, {1.0f}), true);
    Variable unused = Variable::leaf(Tensor(1, 1, {5.0f}), true);
    ag::Adam opt({used, unused}, 0.1f);
    opt.zeroGrad();
    Variable loss = ag::sumSquaredDiff(
        used, Variable::leaf(Tensor(1, 1), false));
    loss.backward();
    opt.step();
    EXPECT_FLOAT_EQ(unused.value()(0, 0), 5.0f);
    EXPECT_NE(used.value()(0, 0), 1.0f);
}

TEST(Optimizer, AdamSolvesLinearRegression)
{
    // y = X w*; recover w* from data.
    Rng rng(41);
    Tensor x_t(32, 4);
    x_t.fillGaussian(rng);
    Tensor w_star(4, 1, {1.0f, -2.0f, 0.5f, 3.0f});
    Variable x = Variable::leaf(x_t, false);
    Variable y = Variable::leaf(Tensor(32, 1), false);
    {
        // Build targets.
        Tensor y_t(32, 1);
        for (std::size_t r = 0; r < 32; ++r) {
            float acc = 0.0f;
            for (std::size_t c = 0; c < 4; ++c)
                acc += x_t(r, c) * w_star(c, 0);
            y_t(r, 0) = acc;
        }
        y = Variable::leaf(y_t, false);
    }

    Variable w = Variable::leaf(Tensor(4, 1), true);
    ag::Adam opt({w}, 0.05f);
    for (int i = 0; i < 800; ++i) {
        opt.zeroGrad();
        Variable loss = ag::mseLoss(ag::matmul(x, w), y);
        loss.backward();
        opt.step();
    }
    EXPECT_LT(maxAbsDiff(w.value(), w_star), 0.05f);
}

} // namespace
} // namespace pimdl
