#!/usr/bin/env python3
"""Cross-layer invariant lints the compiler cannot check.

Three families of repo-wide invariants live in conventions that span
languages, so neither the C++ toolchain nor a Python unit test sees a
violation:

1. Metric-name drift. scripts/check_metrics.py enforces a required-key
   schema over the --metrics-out snapshots; the names themselves are
   string literals inside C++ publish calls. This lint extracts every
   metric name the C++ tree publishes (plus a small, explicitly listed
   set of dynamically concatenated producers) and diffs it against
   `check_metrics.py --dump-schema`, failing on BOTH directions of
   drift: a schema key no C++ publishes (the gate can never pass) and
   a published name under a schema-gated prefix that the schema does
   not list (the gate silently stops covering it).

2. Fault/chaos draw-stream collisions. Every deterministic draw is a
   counter-based hash keyed by a `k*Stream*` integer constant; two
   constants with the same value silently correlate two supposedly
   independent fault processes. All stream constants in src/ must be
   globally unique AND live inside the id range STREAM_ID_RANGES
   registers for their subsystem (fault ladder 1-199, chaos harness
   201-299, transfer engine 301-399), so new subsystems claim a block
   instead of squatting on the next free integer.

3. Raw synchronization primitives. std::mutex / std::lock_guard hide
   from both Clang's -Wthread-safety analysis and the runtime
   lock-order tracker (src/analysis/lockorder.h), and raw
   std::this_thread::sleep_for breaks ManualClock determinism. All
   three are banned outside an explicit allowlist: code uses the
   annotated Mutex/MutexLock/CondVar (common/thread_annotations.h) and
   Clock::sleepFor (common/clock.h) instead. Tests may sleep (they
   wait on real background threads) but may not use raw mutexes.

Usage: lint_invariants.py            # lint the tree, exit 1 on drift
       lint_invariants.py --self-test  # prove each check still fires
"""

import json
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Directories scanned for metric literals and stream constants.
CPP_SCAN_DIRS = ["src", "bench"]

# Metric names built by concatenation at runtime: the literal extractor
# cannot see them, so each is declared here with the file that must
# still contain its producing fragment. `covers_gauge_patterns` lists
# the schema gauge_patterns the producer satisfies; the lint fails if
# the fragment disappears while the schema still requires the names.
DYNAMIC_PRODUCERS = [
    {
        "pattern": r"engine\.role\..+\.(ccs_s|lut_s)",
        "file": "src/runtime/engine.cc",
        "fragment": '"engine.role."',
        "covers_gauge_patterns": [
            r"engine\.role\..+\.ccs_s",
            r"engine\.role\..+\.lut_s",
        ],
    },
    {
        "pattern": r"serving\.live\.breaker\.(state|opens|closes|probes)",
        "file": "src/runtime/resilience.cc",
        "fragment": 'metric_prefix + ".',
        "covers_gauge_patterns": [],
    },
]

# A published name under one of these prefixes is part of a schema-
# gated family: check_metrics.py makes promises about it, so it must
# appear in the dumped schema. Names outside (bench-local kernels.*,
# internal dpu.*, ...) may stay schema-free.
SCHEMA_GATED_PREFIXES = [
    "analysis.",
    "backend.",
    "chaos.",
    "fault.",
    "serving.live.",
    "transfer.",
    "verify.",
]

# Draw-stream id registry: (path prefix, lo, hi) — every k*Stream*
# constant must fall in the inclusive range its defining file's first
# matching prefix claims. More specific prefixes come first.
STREAM_ID_RANGES = [
    ("src/transfer/", 301, 399),
    ("src/fault/chaos", 201, 299),
    ("src/fault/", 1, 199),
]

# The only files allowed to touch the raw primitives: the annotated
# wrappers themselves, the Clock that owns real sleeping, and the
# lock-order tracker (whose internal lock must be untracked).
RAW_PRIMITIVE_ALLOWLIST = {
    "src/common/thread_annotations.h",
    "src/common/clock.h",
    "src/analysis/lockorder.cc",
}

RAW_PRIMITIVE_PATTERNS = [
    (r"std::mutex\b", "std::mutex (use pimdl::Mutex)"),
    (r"std::lock_guard\b", "std::lock_guard (use pimdl::MutexLock)"),
    (
        r"std::this_thread::sleep_for\b",
        "std::this_thread::sleep_for (use Clock::sleepFor)",
    ),
]

METRIC_CALL_RE = re.compile(r"\b(?:counter|gauge|histogram)\(\s*\"([^\"]+)\"")
STREAM_CONST_RE = re.compile(r"\b(k\w*Stream\w*)\s*=\s*(\d+)")


def cpp_files(dirs):
    for top in dirs:
        for path in sorted((REPO_ROOT / top).rglob("*")):
            if path.suffix in (".cc", ".h"):
                yield path


def strip_comments(text):
    """Drops // and /* */ comments so prose mentioning a banned token
    (or a metric name) is not flagged. String literals containing
    comment markers do not occur in this tree's sync/metric code."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def extract_metric_literals(dirs=CPP_SCAN_DIRS):
    """All metric-name string literals passed to counter()/gauge()/
    histogram() in the C++ tree. A literal ending in '.' is a
    concatenation prefix (dynamic producer), tracked separately."""
    literals = set()
    prefixes = set()
    for path in cpp_files(dirs):
        for name in METRIC_CALL_RE.findall(
            strip_comments(path.read_text())
        ):
            (prefixes if name.endswith(".") else literals).add(name)
    return literals, prefixes


def load_schema():
    out = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts/check_metrics.py"),
         "--dump-schema"],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def schema_names(schema):
    """Flat (names, gauge_patterns) across every schema mode."""
    names = set()
    patterns = set()
    for mode in schema["modes"].values():
        names.update(mode["counters"])
        names.update(mode["gauges"])
        names.update(mode["histograms"])
        patterns.update(mode["gauge_patterns"])
    return names, patterns


def check_schema_to_cpp(schema, literals):
    """Direction 1: every key the schema requires must still have a
    producer in the C++ tree, literal or declared-dynamic."""
    violations = []
    names, patterns = schema_names(schema)
    dynamic = [
        (entry, re.compile(entry["pattern"]))
        for entry in DYNAMIC_PRODUCERS
    ]

    for entry, _ in dynamic:
        producer = REPO_ROOT / entry["file"]
        if not producer.is_file() or entry[
            "fragment"
        ] not in producer.read_text():
            violations.append(
                f"dynamic metric producer for {entry['pattern']!r} "
                f"vanished: {entry['file']} no longer contains "
                f"{entry['fragment']!r}"
            )

    for name in sorted(names):
        if name in literals:
            continue
        if any(rx.fullmatch(name) for _, rx in dynamic):
            continue
        violations.append(
            f"schema requires metric {name!r} but no C++ publish call "
            "produces it (check_metrics.py can never pass)"
        )

    covered = {
        pattern
        for entry in DYNAMIC_PRODUCERS
        for pattern in entry["covers_gauge_patterns"]
    }
    for pattern in sorted(patterns):
        rx = re.compile(pattern)
        if any(rx.fullmatch(name) for name in literals):
            continue
        if pattern in covered:
            continue
        violations.append(
            f"schema gauge pattern {pattern!r} matches no published "
            "literal and no declared dynamic producer covers it"
        )
    return violations


def check_cpp_to_schema(schema, literals):
    """Direction 2: every published name under a schema-gated prefix
    must be listed in the schema, or the gate silently narrows."""
    violations = []
    names, patterns = schema_names(schema)
    pattern_rx = [re.compile(p) for p in patterns]
    for name in sorted(literals):
        if not any(
            name.startswith(prefix) for prefix in SCHEMA_GATED_PREFIXES
        ):
            continue
        if name in names:
            continue
        if any(rx.fullmatch(name) for rx in pattern_rx):
            continue
        violations.append(
            f"C++ publishes metric {name!r} under a schema-gated "
            "prefix but check_metrics.py does not require it "
            "(--dump-schema drift)"
        )
    return violations


def collect_stream_constants(dirs=("src",)):
    constants = []
    for path in cpp_files(dirs):
        text = strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), start=1):
            for name, value in STREAM_CONST_RE.findall(line):
                rel = path.relative_to(REPO_ROOT)
                constants.append((f"{rel}:{lineno}", name, int(value)))
    return constants


def check_stream_ids(constants, ranges=None):
    violations = []
    by_value = {}
    by_name = {}
    for where, name, value in constants:
        if value in by_value and by_name.get(name) != value:
            other_where, other_name = by_value[value]
            violations.append(
                f"draw-stream collision: {name} at {where} and "
                f"{other_name} at {other_where} both use stream id "
                f"{value} — their fault processes are correlated"
            )
        by_value.setdefault(value, (where, name))
        by_name[name] = value
    if not constants:
        violations.append(
            "no k*Stream constants found under src/ — the stream-id "
            "scan pattern no longer matches the tree"
        )
    for where, name, value in constants:
        claimed = next(
            (
                (prefix, lo, hi)
                for prefix, lo, hi in (
                    STREAM_ID_RANGES if ranges is None else ranges
                )
                if where.startswith(prefix)
            ),
            None,
        )
        if claimed is None:
            violations.append(
                f"stream constant {name} at {where} lives in a file "
                "with no STREAM_ID_RANGES entry — register a block for "
                "its subsystem in scripts/lint_invariants.py"
            )
        elif not claimed[1] <= value <= claimed[2]:
            violations.append(
                f"stream id {value} ({name} at {where}) is outside the "
                f"[{claimed[1]}, {claimed[2]}] block registered for "
                f"{claimed[0]!r}"
            )
    return violations


def check_raw_primitives(contents=None):
    """@p contents: {relpath: text}; defaults to the real tree. src/
    and bench/ are held to all three bans; tests/ only to the mutex
    bans (tests legitimately sleep while herding real threads)."""
    if contents is None:
        contents = {}
        for top in ("src", "bench", "tests"):
            for path in cpp_files((top,)):
                rel = str(path.relative_to(REPO_ROOT))
                contents[rel] = path.read_text()
    violations = []
    for rel in sorted(contents):
        if rel in RAW_PRIMITIVE_ALLOWLIST:
            continue
        bans = RAW_PRIMITIVE_PATTERNS
        if rel.startswith("tests/"):
            bans = RAW_PRIMITIVE_PATTERNS[:2]
        text = strip_comments(contents[rel])
        for lineno, line in enumerate(text.splitlines(), start=1):
            for pattern, what in bans:
                if re.search(pattern, line):
                    violations.append(
                        f"{rel}:{lineno}: banned raw primitive "
                        f"{what}; allowlist lives in "
                        "scripts/lint_invariants.py"
                    )
    return violations


def self_test():
    """Negative tests: each checker must fire on a seeded violation
    and stay quiet on the clean fixture."""
    failures = []

    schema = {
        "modes": {
            "base": {
                "counters": ["real.counter"],
                "gauges": [],
                "gauge_patterns": [],
                "histograms": [],
            }
        }
    }
    ghost = dict(schema)
    ghost["modes"] = {
        "base": dict(
            schema["modes"]["base"],
            counters=["real.counter", "lint.selftest.ghost"],
        )
    }
    if not check_schema_to_cpp(ghost, {"real.counter"}):
        failures.append("schema->C++ drift not detected")
    if check_schema_to_cpp(schema, {"real.counter"}):
        failures.append("schema->C++ false positive on clean fixture")

    if not check_cpp_to_schema(
        schema, {"real.counter", "fault.selftest.unlisted"}
    ):
        failures.append("C++->schema drift not detected")
    if check_cpp_to_schema(schema, {"real.counter"}):
        failures.append("C++->schema false positive on clean fixture")

    ranges = [("src/a/", 1, 99), ("src/b/", 100, 199)]
    colliding = [
        ("src/a/a.cc:1", "kStreamOne", 7),
        ("src/b/b.cc:2", "kStreamTwo", 7),
    ]
    if not check_stream_ids(colliding, ranges):
        failures.append("stream-id collision not detected")
    clean = [
        ("src/a/a.cc:1", "kStreamOne", 7),
        ("src/b/b.cc:2", "kStreamTwo", 108),
    ]
    if check_stream_ids(clean, ranges):
        failures.append("stream-id false positive on unique ids")
    out_of_range = [
        ("src/a/a.cc:1", "kStreamOne", 150),
        ("src/b/b.cc:2", "kStreamTwo", 108),
    ]
    if not check_stream_ids(out_of_range, ranges):
        failures.append("out-of-block stream id not detected")
    unregistered = [("src/c/c.cc:1", "kStreamThree", 7)]
    if not check_stream_ids(unregistered, ranges):
        failures.append("unregistered stream-id file not detected")

    seeded = {
        "src/runtime/bad.cc": "std::lock_guard<std::mutex> lock(mu);",
        "tests/test_ok.cc": "std::this_thread::sleep_for(ms);",
        "src/common/thread_annotations.h": "std::mutex mu_;",
    }
    raw = check_raw_primitives(seeded)
    if not any("src/runtime/bad.cc" in v for v in raw):
        failures.append("raw-primitive ban not detected")
    if any("test_ok.cc" in v or "thread_annotations" in v for v in raw):
        failures.append("raw-primitive ban fired on allowed use")

    if failures:
        for failure in failures:
            print(f"lint_invariants: SELF-TEST FAIL: {failure}",
                  file=sys.stderr)
        return 1
    print("lint_invariants: self-test OK (all checks fire)")
    return 0


def main():
    if sys.argv[1:] == ["--self-test"]:
        sys.exit(self_test())
    if sys.argv[1:]:
        print(f"usage: {sys.argv[0]} [--self-test]", file=sys.stderr)
        sys.exit(2)

    schema = load_schema()
    literals, prefixes = extract_metric_literals()
    declared = {entry["fragment"].strip('"') for entry in
                DYNAMIC_PRODUCERS if entry["fragment"].startswith('"')}
    violations = []
    for prefix in sorted(prefixes - declared):
        violations.append(
            f"metric publish call concatenates onto literal prefix "
            f"{prefix!r} but no DYNAMIC_PRODUCERS entry declares it"
        )
    violations += check_schema_to_cpp(schema, literals)
    violations += check_cpp_to_schema(schema, literals)
    constants = collect_stream_constants()
    violations += check_stream_ids(constants)
    violations += check_raw_primitives()

    if violations:
        for violation in violations:
            print(f"lint_invariants: FAIL: {violation}",
                  file=sys.stderr)
        print(f"lint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        sys.exit(1)

    names, patterns = schema_names(schema)
    print(
        "lint_invariants: OK "
        f"({len(literals)} published metric names, "
        f"{len(names)} schema keys + {len(patterns)} patterns, "
        f"{len(constants)} draw-stream ids, raw-primitive ban clean)"
    )


if __name__ == "__main__":
    main()
