/** @file eLUT-NN calibration integration tests (paper Section 4.2). */

#include <gtest/gtest.h>

#include "lutnn/elutnn.h"

namespace pimdl {
namespace {

ClassifierConfig
smallConfig()
{
    ClassifierConfig cfg;
    cfg.input_dim = 8;
    cfg.hidden = 8;
    cfg.ffn = 16;
    cfg.layers = 1;
    cfg.classes = 4;
    cfg.seq_len = 6;
    cfg.subvec_len = 2;
    cfg.centroids = 8;
    return cfg;
}

SyntheticTask
smallTask()
{
    SyntheticTaskConfig cfg;
    cfg.classes = 4;
    cfg.seq_len = 6;
    cfg.input_dim = 8;
    cfg.noise = 0.3f;
    cfg.train_samples = 96;
    cfg.test_samples = 48;
    return makeSyntheticTask(cfg);
}

TEST(Elutnn, DenseTrainingLearnsTask)
{
    TransformerClassifier model(smallConfig());
    SyntheticTask task = smallTask();
    TrainOptions opts;
    opts.epochs = 25;
    const float acc = trainDense(model, task, opts);
    EXPECT_GT(acc, 0.7f) << "dense model should learn the synthetic task";
}

TEST(Elutnn, CodebookInitInstallsAllLayers)
{
    TransformerClassifier model(smallConfig());
    SyntheticTask task = smallTask();
    initCodebooksFromActivations(model, task.train, 16, 1);
    EXPECT_EQ(model.centroidParams().size(), 6u);
}

TEST(Elutnn, CalibrationImprovesHardLutAccuracy)
{
    TransformerClassifier model(smallConfig());
    SyntheticTask task = smallTask();
    TrainOptions train_opts;
    train_opts.epochs = 25;
    trainDense(model, task, train_opts);

    CalibrationOptions cal;
    cal.epochs = 8;
    cal.data_fraction = 0.25f;
    CalibrationReport report = calibrateElutNn(model, task, cal);
    EXPECT_EQ(report.loss_history.size(), cal.epochs);
    EXPECT_GE(report.accuracy_after, report.accuracy_before - 0.05f)
        << "eLUT-NN calibration must not destroy accuracy";
}

TEST(Elutnn, ReportsCalibrationSampleBudget)
{
    TransformerClassifier model(smallConfig());
    SyntheticTask task = smallTask();
    CalibrationOptions cal;
    cal.epochs = 1;
    cal.data_fraction = 0.10f;
    cal.batch_size = 4;
    CalibrationReport report = calibrateElutNn(model, task, cal);
    // 10% of 96 = 9 -> at least one batch, at most the whole set.
    EXPECT_GE(report.samples_used, 4u);
    EXPECT_LE(report.samples_used, task.train.size());
}

TEST(Elutnn, BaselineUsesSoftAssignmentPath)
{
    // The baseline must run (soft assignment is differentiable end to
    // end) and produce a hard-LUT accuracy measurement.
    TransformerClassifier model(smallConfig());
    SyntheticTask task = smallTask();
    TrainOptions train_opts;
    train_opts.epochs = 10;
    trainDense(model, task, train_opts);

    CalibrationOptions cal;
    cal.epochs = 2;
    cal.data_fraction = 1.0f;
    CalibrationReport report = calibrateBaselineLutNn(model, task, cal);
    EXPECT_GE(report.accuracy_after, 0.0f);
    EXPECT_LE(report.accuracy_after, 1.0f);
}

TEST(Elutnn, LossHistoryIsFinite)
{
    TransformerClassifier model(smallConfig());
    SyntheticTask task = smallTask();
    CalibrationOptions cal;
    cal.epochs = 3;
    cal.data_fraction = 0.2f;
    CalibrationReport report = calibrateElutNn(model, task, cal);
    for (float l : report.loss_history)
        EXPECT_TRUE(std::isfinite(l));
}

} // namespace
} // namespace pimdl
