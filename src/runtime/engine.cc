#include "engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pimdl {

PimDlEngine::PimDlEngine(PimPlatformConfig platform,
                         HostProcessorConfig host)
    : platform_(platform), host_(std::move(host)),
      tuner_(std::move(platform))
{}

namespace {

/** Elementwise host work of one encoder layer (residuals, LN, GELU). */
void
elementwiseProfile(const TransformerConfig &model, double &ops,
                   double &bytes)
{
    const double tokens = static_cast<double>(model.tokens());
    const double hidden = static_cast<double>(model.hidden_dim);
    const double ffn = static_cast<double>(model.ffn_dim);
    // Two residual adds + two layernorms over hidden, one GELU over ffn.
    ops = tokens * hidden * (2.0 + 2.0 * 8.0) + tokens * ffn * 10.0;
    bytes = (tokens * hidden * 6.0 + tokens * ffn * 2.0) * 4.0;
}

} // namespace

void
PimDlEngine::addHostSideOps(const TransformerConfig &model,
                            InferenceEstimate &est, HostDtype dtype) const
{
    const double attn = host_.attentionSeconds(model.batch, model.seq_len,
                                               model.hidden_dim, dtype) *
                        static_cast<double>(model.layers);
    double ew_ops = 0.0;
    double ew_bytes = 0.0;
    elementwiseProfile(model, ew_ops, ew_bytes);

    double other = 0.0;
    if (platform_.supports_elementwise) {
        // Offload elementwise operators to the PIM units: they are
        // bandwidth-bound and the banks have far more bandwidth than
        // the host link (paper Figure 6-(b) offloading choice).
        other = std::max(ew_ops / platform_.totalAddThroughput(),
                         ew_bytes / platform_.totalStreamBandwidth()) *
                static_cast<double>(model.layers);
        est.pim_busy_s += other;
    } else {
        other = host_.elementwiseSeconds(ew_ops, ew_bytes) *
                static_cast<double>(model.layers);
        est.host_busy_s += other;
    }

    est.attention_s += attn;
    est.other_s += other;
    est.host_busy_s += attn;
    est.total_s += attn + other;
}

InferenceEstimate
PimDlEngine::estimatePimDlImpl(const TransformerConfig &model,
                               const LutNnParams &params,
                               const LutMapping *override_mapping) const
{
    InferenceEstimate est;
    est.label = "PIM-DL(V=" + std::to_string(params.subvec_len) +
                ",CT=" + std::to_string(params.centroids) + ")@" +
                platform_.name;

    obs::TraceSpan span("engine.estimatePimDl");
    span.attr("model", model.name);
    span.attr("batch", static_cast<std::uint64_t>(model.batch));
    span.attr("platform", platform_.name);
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();

    for (const LinearWorkload &w : model.linearWorkloads()) {
        LutWorkloadShape shape;
        shape.n = w.n;
        shape.cb = w.h / params.subvec_len;
        shape.ct = params.centroids;
        shape.f = w.f;
        // PEs requantize outputs to the platform's LUT dtype before the
        // host fetches them (the next layer's CCS re-quantizes anyway),
        // so the gather moves lut_dtype-wide elements, not INT32.
        shape.output_dtype_bytes = platform_.lut_dtype_bytes;

        LinearLatency layer;
        layer.role = w.role;

        LutCostBreakdown cost;
        if (override_mapping) {
            cost = evaluateLutMapping(platform_, shape, *override_mapping);
            PIMDL_REQUIRE(cost.legal,
                          "override mapping illegal for workload " +
                              std::string(linearRoleName(w.role)) + ": " +
                              cost.illegal_reason);
            layer.mapping = *override_mapping;
        } else {
            const AutoTuneResult &tuned = tuneCached(shape);
            PIMDL_REQUIRE(tuned.found, "auto-tuner found no legal mapping");
            cost = tuned.cost;
            layer.mapping = tuned.mapping;
        }

        layer.lut_s = cost.total() * static_cast<double>(model.layers);
        layer.ccs_s = host_.ccsSeconds(w.n, w.h, params.centroids,
                                       params.subvec_len) *
                      static_cast<double>(model.layers);

        est.lut_s += layer.lut_s;
        est.ccs_s += layer.ccs_s;
        est.pim_busy_s += layer.lut_s;
        est.host_busy_s += layer.ccs_s;
        est.link_bytes +=
            cost.link_bytes * static_cast<double>(model.layers);
        est.total_s += layer.lut_s + layer.ccs_s;
        est.per_linear.push_back(layer);

        // Per-LinearRole CCS/LUT split (the Figure 11-(b) breakdown),
        // published as gauges holding the most recent estimate.
        const std::string role = linearRoleName(w.role);
        reg.gauge("engine.role." + role + ".ccs_s").set(layer.ccs_s);
        reg.gauge("engine.role." + role + ".lut_s").set(layer.lut_s);
    }

    addHostSideOps(model, est, HostDtype::Fp32);

    static obs::Counter &estimates = reg.counter("engine.estimates");
    static obs::Histogram &h_ccs = reg.histogram("engine.ccs_s");
    static obs::Histogram &h_lut = reg.histogram("engine.lut_s");
    static obs::Histogram &h_total = reg.histogram("engine.total_s");
    estimates.add();
    h_ccs.record(est.ccs_s);
    h_lut.record(est.lut_s);
    h_total.record(est.total_s);
    span.attr("total_s", est.total_s);

    const EnergyModel energy_model(platform_);
    // PIM-DIMMs stay powered for the whole inference (no DVFS), so PIM
    // energy integrates static power over total wall time.
    est.energy = energy_model.energy(est.total_s, est.host_busy_s,
                                     est.link_bytes);
    return est;
}

const AutoTuneResult &
PimDlEngine::tuneCached(const LutWorkloadShape &shape) const
{
    const std::array<std::size_t, 5> key{
        shape.n, shape.cb, shape.ct, shape.f,
        static_cast<std::size_t>(shape.output_dtype_bytes)};
    const auto it = tune_cache_.find(key);
    if (it != tune_cache_.end())
        return it->second;
    return tune_cache_.emplace(key, tuner_.tune(shape)).first->second;
}

InferenceEstimate
PimDlEngine::estimatePimDl(const TransformerConfig &model,
                           const LutNnParams &params) const
{
    return estimatePimDlImpl(model, params, nullptr);
}

InferenceEstimate
PimDlEngine::estimatePimDlWithMapping(const TransformerConfig &model,
                                      const LutNnParams &params,
                                      const LutMapping &mapping) const
{
    return estimatePimDlImpl(model, params, &mapping);
}

InferenceEstimate
PimDlEngine::estimatePimDlPipelined(const TransformerConfig &model,
                                    const LutNnParams &params) const
{
    InferenceEstimate est = estimatePimDlImpl(model, params, nullptr);
    est.label += "+pipelined";

    // The host-side CCS of operator i+1 hides behind the PIM-side LUT
    // reduction of operator i (double-buffered index matrices);
    // attention and elementwise work stay on the critical path because
    // they depend on the gathered outputs.
    const double overlapped = std::max(est.ccs_s, est.lut_s);
    est.total_s = overlapped + est.attention_s + est.other_s;

    const EnergyModel energy_model(platform_);
    est.energy = energy_model.energy(est.total_s, est.host_busy_s,
                                     est.link_bytes);
    return est;
}

double
PimDlEngine::pimGemmLinearSeconds(const LinearWorkload &w, HostDtype dtype,
                                  std::size_t batch) const
{
    const double elem = hostDtypeBytes(dtype);
    const double ops = 2.0 * static_cast<double>(w.n) * w.h * w.f;
    const double num_pes = static_cast<double>(platform_.num_pes);

    if (platform_.product == PimProduct::UpmemDimm) {
        // DPUs have no hardware multiplier: a MAC costs one microcoded
        // multiply plus one add. Compute utterly dominates.
        const double mac_rate =
            1.0 / (1.0 / platform_.pe_mul_ops_per_s +
                   1.0 / platform_.pe_add_ops_per_s);
        const double compute = (ops / 2.0) / (mac_rate * num_pes);

        // Activation broadcast and result gather (eq. 4 pattern), with the
        // same group/lane partition as LUT operators.
        const double act_bytes = static_cast<double>(w.n) * w.h * elem;
        const double out_bytes = static_cast<double>(w.n) * w.f * 4.0;
        const double transfer =
            act_bytes / platform_.host_broadcast.peak * 8.0 +
            out_bytes / platform_.host_gather.peak;

        // Weights stream from MRAM once per activation row block.
        const double weight_bytes_per_pe = static_cast<double>(w.h) * w.f *
                                           elem / num_pes *
                                           (static_cast<double>(w.n) / 64.0);
        const double stream =
            weight_bytes_per_pe / platform_.pe_stream.peak;
        return std::max(compute, stream) + transfer;
    }

    // HBM-PIM / AiM: bank-level GEMV engines. Batched GEMM degenerates
    // into per-row GEMV commands that re-stream the full weight matrix
    // from the banks; the GEMV dataflow's utilization improves with
    // wider (flatter) matrices and degrades as the batch grows (paper
    // Section 6.7). The utilization curve below is a calibration
    // parameter documented in DESIGN.md.
    const double weight_stream_bytes =
        static_cast<double>(w.n) * w.h * w.f * elem;
    // The GEMV command stream keeps only a small slice of the banks
    // busy: wider matrices help, batching hurts, and AiM's GEMV engine
    // (purpose-built MAC-per-bank) sustains about twice HBM-PIM's
    // utilization.
    const double product_factor =
        platform_.product == PimProduct::Aim ? 2.0 : 1.0;
    const double shape_util =
        std::min(1.0, (0.02 + static_cast<double>(w.h) / 80000.0) *
                          product_factor);
    const double batch_penalty = 1.0 + 0.16 * static_cast<double>(batch);
    const double eff_bw =
        platform_.totalStreamBandwidth() * shape_util / batch_penalty;
    const double stream = weight_stream_bytes / eff_bw;
    const double compute = ops / platform_.totalAddThroughput();
    const double cmd_overhead =
        static_cast<double>(w.n) * platform_.kernel_launch_overhead_s;
    return std::max(stream, compute) + cmd_overhead;
}

InferenceEstimate
PimDlEngine::estimatePimGemm(const TransformerConfig &model,
                             HostDtype dtype) const
{
    InferenceEstimate est;
    est.label = "PIM-GEMM@" + platform_.name;

    for (const LinearWorkload &w : model.linearWorkloads()) {
        const double t =
            (pimGemmLinearSeconds(w, dtype, model.batch) +
             platform_.kernel_launch_overhead_s) *
            static_cast<double>(model.layers);
        est.linear_s += t;
        est.pim_busy_s += t;
        est.total_s += t;
        est.link_bytes += (static_cast<double>(w.n) * w.h *
                               hostDtypeBytes(dtype) +
                           static_cast<double>(w.n) * w.f * 4.0) *
                          static_cast<double>(model.layers);
    }

    addHostSideOps(model, est, HostDtype::Fp32);

    const EnergyModel energy_model(platform_);
    est.energy = energy_model.energy(est.total_s, est.host_busy_s,
                                     est.link_bytes);
    return est;
}

InferenceEstimate
PimDlEngine::estimateHostOnly(const TransformerConfig &model,
                              HostDtype dtype) const
{
    return estimateHostInference(host_.config(), model, dtype);
}

InferenceEstimate
estimateHostInference(const HostProcessorConfig &host,
                      const TransformerConfig &model, HostDtype dtype)
{
    const HostModel hm(host);
    InferenceEstimate est;
    est.label = host.name + "(" +
                (dtype == HostDtype::Fp32
                     ? "FP32"
                     : (dtype == HostDtype::Int8 ? "INT8" : "FP16")) +
                ")";

    for (const LinearWorkload &w : model.linearWorkloads()) {
        const double t = hm.gemmSeconds(w.n, w.h, w.f, dtype) *
                         static_cast<double>(model.layers);
        est.linear_s += t;
        est.total_s += t;
        est.host_busy_s += t;
    }

    const double attn =
        hm.attentionSeconds(model.batch, model.seq_len, model.hidden_dim,
                            dtype) *
        static_cast<double>(model.layers);
    double ew_ops = 0.0;
    double ew_bytes = 0.0;
    {
        const double tokens = static_cast<double>(model.tokens());
        const double hidden = static_cast<double>(model.hidden_dim);
        const double ffn = static_cast<double>(model.ffn_dim);
        ew_ops = tokens * hidden * (2.0 + 2.0 * 8.0) + tokens * ffn * 10.0;
        ew_bytes = (tokens * hidden * 6.0 + tokens * ffn * 2.0) * 4.0;
    }
    const double other = hm.elementwiseSeconds(ew_ops, ew_bytes) *
                         static_cast<double>(model.layers);

    est.attention_s = attn;
    est.other_s = other;
    est.total_s += attn + other;
    est.host_busy_s += attn + other;

    est.energy.host_joules = host.power_w * est.total_s;
    return est;
}

} // namespace pimdl
