#include "fault/chaos.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault.h"

namespace pimdl {

namespace {

void
checkRate(double rate, const char *field)
{
    if (!(rate >= 0.0 && rate <= 1.0))
        throw std::runtime_error(std::string("ChaosConfig.") + field +
                                 " must be in [0, 1]");
}

} // namespace

void
ChaosConfig::validate() const
{
    checkRate(worker_stall_rate, "worker_stall_rate");
    checkRate(exception_rate, "exception_rate");
    checkRate(slow_rate, "slow_rate");
    checkRate(heartbeat_loss_rate, "heartbeat_loss_rate");
    if (worker_stall_s <= 0.0)
        throw std::runtime_error("ChaosConfig.worker_stall_s must be > 0");
    if (slow_extra_s <= 0.0)
        throw std::runtime_error("ChaosConfig.slow_extra_s must be > 0");
}

ChaosInjector::ChaosInjector(ChaosConfig config)
    : config_(std::move(config))
{
    config_.validate();
    auto &reg = obs::MetricsRegistry::instance();
    stalls_ = &reg.counter("chaos.worker_stalls");
    exceptions_ = &reg.counter("chaos.exceptions");
    slow_batches_ = &reg.counter("chaos.slow_batches");
    heartbeat_losses_ = &reg.counter("chaos.heartbeat_losses");
}

double
ChaosInjector::stallSeconds(std::uint64_t batch,
                            std::uint64_t attempt) const
{
    if (config_.worker_stall_rate <= 0.0)
        return 0.0;
    if (faultHashUniform(config_.seed, kChaosWorkerStallStream, batch,
                         attempt) >= config_.worker_stall_rate)
        return 0.0;
    stalls_->add();
    return config_.worker_stall_s;
}

bool
ChaosInjector::injectException(std::uint64_t batch, std::uint64_t attempt,
                               bool degraded) const
{
    if (config_.exception_rate <= 0.0)
        return false;
    if (degraded && config_.exceptions_primary_only)
        return false;
    if (faultHashUniform(config_.seed, kChaosExceptionStream, batch,
                         attempt) >= config_.exception_rate)
        return false;
    exceptions_->add();
    return true;
}

double
ChaosInjector::slowExtraSeconds(std::uint64_t batch,
                                std::uint64_t attempt) const
{
    if (config_.slow_rate <= 0.0)
        return 0.0;
    if (faultHashUniform(config_.seed, kChaosSlowStream, batch, attempt) >=
        config_.slow_rate)
        return 0.0;
    slow_batches_->add();
    return config_.slow_extra_s;
}

bool
ChaosInjector::dropHeartbeat(std::uint64_t worker,
                             std::uint64_t batch) const
{
    if (config_.heartbeat_loss_rate <= 0.0)
        return false;
    if (faultHashUniform(config_.seed, kChaosHeartbeatStream, worker,
                         batch) >= config_.heartbeat_loss_rate)
        return false;
    heartbeat_losses_->add();
    return true;
}

} // namespace pimdl
