/**
 * @file
 * Pluggable schedulers: turn a costed plan into an InferenceEstimate.
 *
 * The scheduler contract: per-node accounting (component buckets,
 * device busy time, link traffic, per-role detail) is identical across
 * schedulers — only `total_s` (and the step decomposition) differs,
 * because a schedule decides how much node latency overlaps.
 *
 *  - SequentialScheduler: the paper's execution model; nodes run one
 *    after another, total = sum of node costs.
 *  - PipelinedScheduler: double-buffered CCS/LUT overlap — the host's
 *    CCS work hides behind the PIM's LUT reductions (double-buffered
 *    index matrices), so the LUT-NN window costs max(host CCS, PIM LUT)
 *    while attention/elementwise/dense work stays on the critical path.
 *  - OverlapScheduler: greedy list-schedule of several in-flight
 *    forwards (waves) over the two device resources; steady-state cost
 *    is the makespan amortized per forward. Generalizes pipelining to
 *    arbitrary plan DAGs and is the hook for future heterogeneous
 *    scheduling.
 */

#ifndef PIMDL_PLAN_SCHEDULE_H
#define PIMDL_PLAN_SCHEDULE_H

#include "plan/estimate.h"
#include "plan/plan.h"

namespace pimdl {

/** Stable identifier of the built-in scheduling policies. */
enum class SchedulePolicy
{
    Sequential,
    Pipelined,
    Overlap,
};

/** Human-readable policy name. */
const char *schedulePolicyName(SchedulePolicy policy);

/** Latency/traffic cost of one plan node. */
struct NodeCost
{
    double seconds = 0.0;
    /** Unique host<->PIM bytes this node moves (transfer nodes). */
    double link_bytes = 0.0;
};

/** A plan plus per-node costs (parallel arrays, indexed by node id). */
struct CostedPlan
{
    Plan plan;
    std::vector<NodeCost> costs;
};

/**
 * One wall-clock step of a schedule: host and PIM work that ran inside
 * the step's window. Every step satisfies
 *   max(host_s, pim_s) <= total_s <= host_s + pim_s,
 * and the steps' totals sum to the estimate's total.
 */
struct ScheduleStep
{
    double host_s = 0.0;
    double pim_s = 0.0;
    double total_s = 0.0;
};

/** Outcome of scheduling: the estimate plus step decomposition. */
struct ScheduleResult
{
    /** Estimate with every field filled except label and energy. */
    InferenceEstimate estimate;
    /** Wall-clock decomposition (empty for the overlap scheduler). */
    std::vector<ScheduleStep> steps;
};

/** Scheduling policy over a costed plan. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;
    virtual const char *name() const = 0;
    virtual SchedulePolicy policy() const = 0;
    virtual ScheduleResult schedule(const CostedPlan &costed) const = 0;
};

/** Nodes run back-to-back: total = sum of node costs. */
class SequentialScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "sequential"; }
    SchedulePolicy policy() const override
    {
        return SchedulePolicy::Sequential;
    }
    ScheduleResult schedule(const CostedPlan &costed) const override;
};

/** Double-buffered CCS/LUT overlap; everything else serial. */
class PipelinedScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "pipelined"; }
    SchedulePolicy policy() const override
    {
        return SchedulePolicy::Pipelined;
    }
    ScheduleResult schedule(const CostedPlan &costed) const override;
};

/**
 * Greedy list-schedule of @p waves concurrent forwards over the Host
 * and PIM resources (link transfers are free — their latency is
 * internal to the producing op's analytical cost). Reported total is
 * the makespan divided by the wave count: the steady-state per-forward
 * cost of a saturated serving pipeline.
 */
class OverlapScheduler final : public Scheduler
{
  public:
    explicit OverlapScheduler(std::size_t waves = 2);

    const char *name() const override { return "overlap"; }
    SchedulePolicy policy() const override
    {
        return SchedulePolicy::Overlap;
    }
    ScheduleResult schedule(const CostedPlan &costed) const override;

    std::size_t waves() const { return waves_; }

  private:
    std::size_t waves_;
};

/** Shared immutable scheduler instance for a built-in policy. */
const Scheduler &schedulerFor(SchedulePolicy policy);

/**
 * Degraded-mode re-schedule of a sub-LUT partition around a failed-PE
 * set. The logical (ns_tile x fs_tile) tile grid is untouched — every
 * tile computes exactly the reduction the original mapping prescribed,
 * so the assembled output stays bit-exact — but tiles whose owner PE is
 * dead are dealt round-robin to the surviving PEs, which then execute
 * in `waves` serial rounds instead of one.
 */
struct DegradedLutRemap
{
    /** False when no healthy PE survives (caller must fall back). */
    bool legal = false;
    /** Logical tiles of the original partition (groups x lanes). */
    std::size_t total_tiles = 0;
    /** Surviving PEs available to execute tiles. */
    std::size_t healthy_pes = 0;
    /** Serial rounds needed: ceil(total_tiles / healthy_pes). */
    std::size_t waves = 0;
    /** Logical tile id -> surviving physical PE id. */
    std::vector<std::size_t> tile_owner;
};

/**
 * Plans the degraded execution of @p mapping on @p shape given the
 * per-PE liveness vector @p failed (indexed by physical PE id over the
 * mapping's pool; true = dead). Deterministic: tiles are dealt to
 * healthy PEs in ascending id order.
 */
DegradedLutRemap planDegradedLutRemap(const LutWorkloadShape &shape,
                                      const LutMapping &mapping,
                                      const std::vector<bool> &failed);

} // namespace pimdl

#endif // PIMDL_PLAN_SCHEDULE_H
