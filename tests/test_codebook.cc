/** @file CodebookSet and IndexMatrix tests. */

#include <gtest/gtest.h>

#include "lutnn/codebook.h"

namespace pimdl {
namespace {

TEST(LutShape, ValidatesDivisibility)
{
    LutShape shape;
    shape.input_dim = 10;
    shape.output_dim = 4;
    shape.subvec_len = 3;
    shape.centroids = 4;
    EXPECT_THROW(shape.validate(), std::runtime_error);
    shape.subvec_len = 2;
    EXPECT_NO_THROW(shape.validate());
    EXPECT_EQ(shape.codebooks(), 5u);
}

TEST(CodebookSet, NearestUsesInnerProductForm)
{
    // Two centroids per codebook; verify the argmin matches brute-force
    // L2 distance.
    CodebookSet set(1, 2, 3);
    float *c0 = set.centroid(0, 0);
    float *c1 = set.centroid(0, 1);
    c0[0] = 1.0f; c0[1] = 0.0f; c0[2] = 0.0f;
    c1[0] = 0.0f; c1[1] = 2.0f; c1[2] = 0.0f;
    set.refreshNorms();

    const float near_c0[3] = {0.9f, 0.1f, 0.0f};
    const float near_c1[3] = {0.0f, 1.8f, 0.1f};
    EXPECT_EQ(set.nearest(0, near_c0), 0u);
    EXPECT_EQ(set.nearest(0, near_c1), 1u);
}

TEST(CodebookSet, NormsCacheMatchesCentroids)
{
    Rng rng(8);
    CodebookSet set(3, 4, 2);
    for (auto &v : set.raw())
        v = rng.gaussian();
    set.refreshNorms();
    for (std::size_t cb = 0; cb < 3; ++cb) {
        for (std::size_t ct = 0; ct < 4; ++ct) {
            const float *c = set.centroid(cb, ct);
            const float expect = c[0] * c[0] + c[1] * c[1];
            EXPECT_FLOAT_EQ(set.norm2(cb, ct), expect);
        }
    }
}

TEST(CodebookSet, LearnProducesRequestedGeometry)
{
    Rng rng(10);
    Tensor activations(64, 8);
    activations.fillGaussian(rng);
    KMeansOptions opts;
    CodebookSet set = CodebookSet::learn(activations, 2, 4, opts);
    EXPECT_EQ(set.codebooks(), 4u);
    EXPECT_EQ(set.centroids(), 4u);
    EXPECT_EQ(set.subvecLen(), 2u);
    EXPECT_EQ(set.byteSize(), 4u * 4u * 2u * sizeof(float));
}

TEST(CodebookSet, LearnRejectsBadWidth)
{
    Tensor activations(8, 7);
    KMeansOptions opts;
    EXPECT_THROW(CodebookSet::learn(activations, 2, 4, opts),
                 std::runtime_error);
}

TEST(CodebookSet, LearnedCentroidsApproximateColumns)
{
    // Activations whose first sub-vector column only takes two values:
    // with CT=2 the learned codebook must recover both.
    Tensor activations(40, 2);
    for (std::size_t r = 0; r < 40; ++r) {
        const float v = (r % 2 == 0) ? 1.0f : -1.0f;
        activations(r, 0) = v;
        activations(r, 1) = 2.0f * v;
    }
    KMeansOptions opts;
    CodebookSet set = CodebookSet::learn(activations, 2, 2, opts);
    const float *a = set.centroid(0, 0);
    const float *b = set.centroid(0, 1);
    const bool recovered =
        (std::abs(a[0] - 1.0f) < 1e-3f && std::abs(b[0] + 1.0f) < 1e-3f) ||
        (std::abs(a[0] + 1.0f) < 1e-3f && std::abs(b[0] - 1.0f) < 1e-3f);
    EXPECT_TRUE(recovered);
}

TEST(IndexMatrix, LayoutAndByteSize)
{
    IndexMatrix idx(3, 4);
    idx.at(2, 3) = 7;
    EXPECT_EQ(idx.at(2, 3), 7);
    EXPECT_EQ(idx.byteSize(), 3u * 4u * 2u);
}

} // namespace
} // namespace pimdl
