/**
 * @file
 * Figure 11 reproduction:
 *  (a) inference latency breakdown of PIM-DL (V=4/CT=16) into the LUT
 *      operator (PIM), the CCS operator (host), and other operators
 *      (attention + elementwise on the host);
 *  (b) per-linear-layer speedup of LUT-NN inference over GEMM-based
 *      INT8 inference on the CPU server.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "plan/lowering.h"
#include "runtime/engine.h"
#include "transfer/transfer.h"

using namespace pimdl;
using namespace pimdl::bench;

int
main(int argc, char **argv)
{
    const pimdl::bench::BenchOptions opts =
        pimdl::bench::parseBenchArgs(argc, argv);
    PimDlEngine engine(upmemPlatform(), xeon4210Dual(), opts.backend);
    const HostModel cpu_int8(xeonGold5218Dual());
    const LutNnParams v4{4, 16};

    // Estimates go through the plan pipeline explicitly: lower once,
    // cost the nodes, hand the costed plan to a scheduler.
    const Scheduler &sched = schedulerFor(SchedulePolicy::Sequential);

    printBanner(std::cout,
                "Figure 11-(a): PIM-DL inference latency breakdown "
                "(V=4/CT=16)");
    TablePrinter breakdown({"Model", "LUT %", "CCS %", "Other %",
                            "LUT-NN (LUT+CCS) %"});
    for (const TransformerConfig &model :
         {bertBase(), bertLarge(), vitHuge()}) {
        const InferenceEstimate est =
            engine.estimate(model, v4, ExecutionMode::PimDl, sched);
        const double other = est.attention_s + est.other_s;
        breakdown.addRow({
            model.name,
            TablePrinter::fmt(100.0 * est.lut_s / est.total_s, 1),
            TablePrinter::fmt(100.0 * est.ccs_s / est.total_s, 1),
            TablePrinter::fmt(100.0 * other / est.total_s, 1),
            TablePrinter::fmt(
                100.0 * (est.lut_s + est.ccs_s) / est.total_s, 1),
        });
    }
    breakdown.print(std::cout);
    std::cout << "\nPaper reference: LUT-NN inference (LUT + CCS) takes "
                 "73.7-79.4% of total latency; the LUT operator alone "
                 "51.5-60.4%.\n";

    printBanner(std::cout,
                "Figure 11-(b): Layer-wise speedup vs CPU INT8 GEMM "
                "(V=4/CT=16)");
    TablePrinter layers({"Layer", "BERT-base", "BERT-large", "ViT-huge",
                         "Geomean"});
    std::vector<std::string> names{"QKV", "O", "FFN1", "FFN2"};
    std::vector<std::vector<double>> speedups(4);

    std::vector<TransformerConfig> models{bertBase(), bertLarge(),
                                          vitHuge()};
    std::vector<InferenceEstimate> estimates;
    estimates.reserve(models.size());
    for (const auto &model : models)
        estimates.push_back(
            engine.estimate(model, v4, ExecutionMode::PimDl, sched));

    for (std::size_t role = 0; role < 4; ++role) {
        std::vector<std::string> cells{names[role]};
        for (std::size_t m = 0; m < models.size(); ++m) {
            const LinearWorkload w = models[m].linearWorkloads()[role];
            const double cpu_s =
                cpu_int8.gemmSeconds(w.n, w.h, w.f, HostDtype::Int8) *
                static_cast<double>(models[m].layers);
            const double pim_s = estimates[m].per_linear[role].total();
            const double speedup = cpu_s / pim_s;
            speedups[role].push_back(speedup);
            cells.push_back(TablePrinter::fmtRatio(speedup));
        }
        cells.push_back(TablePrinter::fmtRatio(geomean(speedups[role])));
        layers.addRow(cells);
    }
    layers.print(std::cout);

    std::cout << "\nPaper reference geomeans: QKV 1.61x, O 0.99x, FFN1 "
                 "1.78x, FFN2 2.38x (1.81x overall); FFN2 gains most "
                 "because it has the largest inner dim, O least because "
                 "it is the smallest layer.\n";

    printBanner(std::cout,
                "Transfer-engine overlay: flat payloads vs coalesced "
                "bursts (link seconds)");
    const PimPlatformConfig upmem = upmemPlatform();
    TablePrinter bursts({"Model", "Payloads", "Bursts", "Merged",
                         "Flat link s", "Coalesced link s", "Speedup"});
    LoweringOptions lower_opts;
    lower_opts.platform = &upmem;
    for (const TransformerConfig &model : models) {
        Plan plan = lowerTransformer(model, v4, ExecutionMode::PimDl,
                                     lower_opts);
        const transfer::BurstPlan bp =
            transfer::planTransferBursts(plan, upmem);
        const double flat_s = bp.flatSeconds(upmem);
        const double coal_s = bp.burstSeconds(upmem);
        std::size_t pieces = 0;
        for (const transfer::TransferBurst &b : bp.bursts)
            pieces += b.pieces();
        bursts.addRow({model.name, std::to_string(pieces),
                       std::to_string(bp.bursts.size()),
                       std::to_string(bp.merged_pieces),
                       TablePrinter::fmt(flat_s, 4),
                       TablePrinter::fmt(coal_s, 4),
                       TablePrinter::fmtRatio(flat_s / coal_s)});
    }
    bursts.print(std::cout);
    std::cout << "\nStatic LUT re-staging payloads merge into scatter "
                 "bursts (fewer setups, higher curve point); see "
                 "bench_transfer for the end-to-end engine pricing with "
                 "residency and wave overlap.\n";
    pimdl::bench::writeBenchArtifacts(opts);
    return 0;
}
