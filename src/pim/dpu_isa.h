/**
 * @file
 * A miniature DPU-like instruction set and interpreter.
 *
 * The UPMEM substitution in this repository is mostly analytical; this
 * module adds an instruction-accurate executable layer: a small RISC
 * ISA (registers, WRAM loads/stores, ALU ops, branches, MRAM DMA) in
 * the spirit of UPMEM's DPU, an assembler-style program builder, and an
 * interpreter with cycle accounting. The LUT accumulate micro-kernel is
 * written in this ISA (dpu_kernels.h); executing it both validates the
 * functional semantics of the reduce loop and *derives* the
 * cycles-per-accumulate constant the platform model uses, instead of
 * asserting it.
 */

#ifndef PIMDL_PIM_DPU_ISA_H
#define PIMDL_PIM_DPU_ISA_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pimdl {

/** Opcodes of the miniature DPU ISA. */
enum class DpuOp : std::uint8_t
{
    Movi,  ///< rd = imm
    Mov,   ///< rd = ra
    Add,   ///< rd = ra + rb
    Addi,  ///< rd = ra + imm
    Sub,   ///< rd = ra - rb
    Mul,   ///< rd = ra * rb (microcoded: costs extra cycles)
    Shl,   ///< rd = ra << imm
    Ldb,   ///< rd = sign-extended WRAM byte at [ra + imm]
    Ldh,   ///< rd = sign-extended WRAM halfword at [ra + imm]
    Ldw,   ///< rd = WRAM word at [ra + imm]
    Stw,   ///< WRAM word at [ra + imm] = rb
    Blt,   ///< if (ra < rb) pc = imm
    Bne,   ///< if (ra != rb) pc = imm
    Jmp,   ///< pc = imm
    Dma,   ///< copy rb bytes MRAM[ra] -> WRAM[rd] (blocking)
    Halt,  ///< stop execution
};

/** One decoded instruction. */
struct DpuInstr
{
    DpuOp op = DpuOp::Halt;
    std::uint8_t rd = 0;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::int32_t imm = 0;
};

/** Execution statistics of one kernel run. */
struct DpuRunStats
{
    std::uint64_t instructions = 0;
    /** Pipeline cycles assuming full tasklet occupancy (1 instr/cycle,
     *  plus microcode expansion for multiplies). */
    std::uint64_t cycles = 0;
    std::uint64_t dma_transfers = 0;
    std::uint64_t dma_bytes = 0;
    bool halted = false;
};

/**
 * A single simulated DPU processing engine: 32 general registers, a
 * byte-addressed WRAM scratchpad, and a byte-addressed MRAM backing
 * store reachable only through DMA.
 */
class DpuPe
{
  public:
    DpuPe(std::size_t wram_bytes, std::size_t mram_bytes);

    /** WRAM accessors (host-side staging for tests). */
    std::vector<std::uint8_t> &wram() { return wram_; }
    const std::vector<std::uint8_t> &wram() const { return wram_; }

    /** MRAM accessors. */
    std::vector<std::uint8_t> &mram() { return mram_; }
    const std::vector<std::uint8_t> &mram() const { return mram_; }

    /** Reads a 32-bit little-endian word from WRAM. */
    std::int32_t wramWord(std::size_t addr) const;

    /** Writes a 32-bit little-endian word to WRAM. */
    void setWramWord(std::size_t addr, std::int32_t value);

    /** Register file access (for seeding arguments). */
    void setReg(std::size_t r, std::int32_t value);
    std::int32_t reg(std::size_t r) const;

    /**
     * Runs @p program from pc = 0 until Halt or @p max_steps retired
     * instructions. Throws on illegal memory accesses.
     */
    DpuRunStats run(const std::vector<DpuInstr> &program,
                    std::uint64_t max_steps = 100'000'000);

    /** Microcode expansion of one multiply, in cycles. */
    static constexpr std::uint64_t kMulCycles = 4;

  private:
    std::array<std::int32_t, 32> regs_{};
    std::vector<std::uint8_t> wram_;
    std::vector<std::uint8_t> mram_;
};

/** Fluent builder assembling DpuInstr programs with labels. */
class DpuProgramBuilder
{
  public:
    DpuProgramBuilder &movi(int rd, std::int32_t imm);
    DpuProgramBuilder &mov(int rd, int ra);
    DpuProgramBuilder &add(int rd, int ra, int rb);
    DpuProgramBuilder &addi(int rd, int ra, std::int32_t imm);
    DpuProgramBuilder &sub(int rd, int ra, int rb);
    DpuProgramBuilder &mul(int rd, int ra, int rb);
    DpuProgramBuilder &shl(int rd, int ra, std::int32_t imm);
    DpuProgramBuilder &ldb(int rd, int ra, std::int32_t imm = 0);
    DpuProgramBuilder &ldh(int rd, int ra, std::int32_t imm = 0);
    DpuProgramBuilder &ldw(int rd, int ra, std::int32_t imm = 0);
    DpuProgramBuilder &stw(int rb, int ra, std::int32_t imm = 0);
    DpuProgramBuilder &blt(int ra, int rb, const std::string &label);
    DpuProgramBuilder &bne(int ra, int rb, const std::string &label);
    DpuProgramBuilder &jmp(const std::string &label);
    DpuProgramBuilder &dma(int rd_wram, int ra_mram, int rb_bytes);
    DpuProgramBuilder &halt();

    /** Binds @p label to the next emitted instruction. */
    DpuProgramBuilder &label(const std::string &name);

    /** Resolves labels and returns the finished program. */
    std::vector<DpuInstr> build();

  private:
    struct Fixup
    {
        std::size_t instr;
        std::string label;
    };

    std::vector<DpuInstr> program_;
    std::vector<Fixup> fixups_;
    std::vector<std::pair<std::string, std::size_t>> labels_;

    DpuProgramBuilder &emit(DpuInstr instr);
};

} // namespace pimdl

#endif // PIMDL_PIM_DPU_ISA_H
