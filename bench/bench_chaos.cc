/**
 * @file
 * Chaos soak harness for the resilient serving control plane.
 *
 * Drives the live LiveServingRuntime (functional transformer executor,
 * PimLut primary path with HostLut fallback) through escalating levels
 * of deterministic control-plane chaos (fault/chaos.h): worker stalls,
 * primary-path exception storms, slow batches, and heartbeat losses.
 * The full resilience layer is on — watchdog supervision, circuit
 * breaker, poison bisection, CoDel admission shedding, and the AIMD
 * in-flight limit — and the harness asserts the invariants that layer
 * exists to uphold:
 *
 *   1. Conservation at every level: completed + timed_out + shed +
 *      failed == admitted. No admitted request may vanish.
 *   2. Goodput floor: the in-deadline completion fraction stays above
 *      zero at every level — primary-only exception storms always
 *      leave the HostLut fallback healthy, so the runtime must keep
 *      serving under maximum chaos instead of collapsing.
 *   3. Monotone degradation: goodput never *increases* materially as
 *      chaos escalates (coupled draws make each level's event set a
 *      superset of the previous level's).
 *   4. Monotone fault counts: the injector fires at least as many
 *      events at a higher rate (the coupled-draw contract).
 *
 * Any violation exits nonzero so CI catches a conservation hole (a
 * broken promise, a double resolution, a lost batch) as a hard
 * failure, not a statistic.
 *
 * Also runs the analytical BERT-base serving baseline so the metrics
 * artifact carries the full schema scripts/check_metrics.py gates on
 * (engine/tuner/serving keys plus serving.live.* and chaos.*).
 *
 * `--json [path]` writes BENCH_chaos.json (schema pimdl.bench.chaos.v1).
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "fault/chaos.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "runtime/serving.h"
#include "runtime/serving_live.h"

using namespace pimdl;
using namespace pimdl::bench;

namespace {

/** One chaos level's outcome, destined for BENCH_chaos.json. */
struct ChaosEntry
{
    std::size_t level = 0;
    /** Rate scale of this level in [0, 1] (0 = clean baseline). */
    double scale = 0.0;
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t completed = 0;
    std::size_t timed_out = 0;
    std::size_t shed = 0;
    std::size_t failed = 0;
    double goodput_frac = 0.0;
    std::size_t watchdog_hangs = 0;
    std::size_t bisections = 0;
    std::size_t poison_isolated = 0;
    std::size_t breaker_opens = 0;
    std::size_t chaos_stalls = 0;
    std::size_t chaos_exceptions = 0;
    std::size_t chaos_slow = 0;
    std::size_t chaos_heartbeat_losses = 0;
    bool conserved = false;
};

void
writeChaosJson(const std::string &path,
               const std::vector<ChaosEntry> &entries)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        std::exit(1);
    }
    out << "{\n  \"schema\": \"pimdl.bench.chaos.v1\",\n"
        << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const ChaosEntry &e = entries[i];
        out << "    {\"level\": " << e.level
            << ", \"scale\": " << obs::jsonNumber(e.scale)
            << ", \"submitted\": " << e.submitted
            << ", \"admitted\": " << e.admitted
            << ", \"completed\": " << e.completed
            << ", \"timed_out\": " << e.timed_out
            << ", \"shed\": " << e.shed << ", \"failed\": " << e.failed
            << ", \"goodput_frac\": " << obs::jsonNumber(e.goodput_frac)
            << ", \"watchdog_hangs\": " << e.watchdog_hangs
            << ", \"bisections\": " << e.bisections
            << ", \"poison_isolated\": " << e.poison_isolated
            << ", \"breaker_opens\": " << e.breaker_opens
            << ", \"chaos_stalls\": " << e.chaos_stalls
            << ", \"chaos_exceptions\": " << e.chaos_exceptions
            << ", \"chaos_slow\": " << e.chaos_slow
            << ", \"chaos_heartbeat_losses\": "
            << e.chaos_heartbeat_losses
            << ", \"conserved\": " << (e.conserved ? "true" : "false")
            << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "[bench] chaos results written to " << path << "\n";
}

/** Reads a process-global chaos counter (0 when never registered). */
std::size_t
chaosCount(const char *name)
{
    return static_cast<std::size_t>(
        obs::MetricsRegistry::instance().counter(name).value());
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t requests = 0; // 0 = smoke-dependent default
    std::size_t workers = 2;
    std::size_t max_batch = 4;
    std::size_t levels = 0; // 0 = smoke-dependent default
    double stall_rate = 0.08;
    double exception_rate = 0.35;
    double slow_rate = 0.15;
    double heartbeat_loss_rate = 0.08;
    bool emit_json = false;
    std::string json_path = "BENCH_chaos.json";

    const auto extra = [&](const std::string &arg, int argc_,
                           char **argv_, int &i) {
        if (arg == "--requests" && i + 1 < argc_) {
            requests = parsePositiveSize("--requests", argv_[++i]);
            return true;
        }
        if (arg == "--workers" && i + 1 < argc_) {
            workers = parsePositiveSize("--workers", argv_[++i]);
            return true;
        }
        if (arg == "--max-batch" && i + 1 < argc_) {
            max_batch = parsePositiveSize("--max-batch", argv_[++i]);
            return true;
        }
        if (arg == "--levels" && i + 1 < argc_) {
            levels = parsePositiveSize("--levels", argv_[++i]);
            return true;
        }
        if (arg == "--chaos-stall-rate" && i + 1 < argc_) {
            stall_rate =
                parseUnitInterval("--chaos-stall-rate", argv_[++i]);
            return true;
        }
        if (arg == "--chaos-exception-rate" && i + 1 < argc_) {
            exception_rate =
                parseUnitInterval("--chaos-exception-rate", argv_[++i]);
            return true;
        }
        if (arg == "--chaos-slow-rate" && i + 1 < argc_) {
            slow_rate =
                parseUnitInterval("--chaos-slow-rate", argv_[++i]);
            return true;
        }
        if (arg == "--chaos-heartbeat-loss-rate" && i + 1 < argc_) {
            heartbeat_loss_rate = parseUnitInterval(
                "--chaos-heartbeat-loss-rate", argv_[++i]);
            return true;
        }
        if (arg == "--json") {
            emit_json = true;
            if (i + 1 < argc_ && argv_[i + 1][0] != '-')
                json_path = argv_[++i];
            return true;
        }
        return false;
    };
    const BenchOptions opts = parseBenchArgs(
        argc, argv, extra,
        " [--requests <n>] [--workers <n>] [--max-batch <n>]"
        " [--levels <n>] [--chaos-stall-rate <r>]"
        " [--chaos-exception-rate <r>] [--chaos-slow-rate <r>]"
        " [--chaos-heartbeat-loss-rate <r>] [--json [path]]");

    if (requests == 0)
        requests = opts.smoke ? 64 : 256;
    if (levels == 0)
        levels = opts.smoke ? 3 : 5;

    // ---------------------------------------------------------------
    // Analytical baseline (populates the base metrics schema).
    // ---------------------------------------------------------------
    printBanner(std::cout,
                "Analytical baseline: BERT-base serving on UPMEM");
    PimDlEngine engine(upmemPlatform(), xeon4210Dual());
    ServingSimulator bert_sim(engine, bertBase(), LutNnParams{4, 16});
    ServingConfig bert_cfg;
    bert_cfg.max_batch = 32;
    bert_cfg.max_wait_s = 0.25;
    bert_cfg.horizon_s = opts.smoke ? 10.0 : 30.0;
    const double bert_latency =
        bert_sim.batchLatency(bert_cfg.max_batch, bert_cfg.policy);
    bert_cfg.arrival_rate =
        0.6 * static_cast<double>(bert_cfg.max_batch) / bert_latency;
    const ServingStats bert_stats = bert_sim.simulate(bert_cfg);
    std::cout << "BERT-base analytical: " << bert_stats.requests
              << " requests, p99 "
              << TablePrinter::fmt(bert_stats.p99_latency_s, 3)
              << " s, throughput "
              << TablePrinter::fmt(bert_stats.throughput_rps, 1)
              << " rps\n";

    // ---------------------------------------------------------------
    // Executable proxy model, PimLut primary -> HostLut fallback.
    // ---------------------------------------------------------------
    FunctionalTransformerConfig model_cfg;
    model_cfg.hidden = 32;
    model_cfg.ffn = 64;
    model_cfg.layers = 2;
    model_cfg.heads = 2;
    model_cfg.subvec_len = 4;
    model_cfg.centroids = 16;
    const std::size_t seq = 16;

    FunctionalTransformer model(model_cfg);
    {
        Rng rng(404);
        Tensor calibration(4 * seq, model_cfg.hidden);
        calibration.fillGaussian(rng);
        model.convertToLut(calibration, seq);
        // Tune PIM mappings so the primary path actually executes the
        // simulated-PE distribution (tuned once for the full batch
        // shape; the mapping is shape-stable across pow2 buckets).
        model.planPimExecution(upmemPlatform(), max_batch * seq);
    }
    FunctionalBatchExecutor executor(model, LinearBackendKind::PimLut);

    std::vector<Tensor> payloads;
    for (std::size_t i = 0; i < 8; ++i) {
        Rng rng(900 + i);
        Tensor t(seq, model_cfg.hidden);
        t.fillGaussian(rng);
        payloads.push_back(std::move(t));
    }

    // Resilience policy shared by every level. The stall duration
    // (0.25 s) deliberately exceeds the watchdog's hang floor so
    // injected stalls are seized and retried instead of waited out.
    LiveServingConfig live_cfg;
    live_cfg.max_batch = max_batch;
    live_cfg.max_wait_s = 2e-3;
    live_cfg.queue_capacity = 512;
    live_cfg.workers = workers;
    live_cfg.collect_outputs = false;
    live_cfg.deadline_s = 0.5;
    live_cfg.faults.max_retries = 3;
    live_cfg.faults.backoff_base_s = 1e-4;
    live_cfg.faults.backoff_cap_s = 2e-3;
    live_cfg.resilience.watchdog.enabled = true;
    live_cfg.resilience.watchdog.hang_timeout_factor = 8.0;
    live_cfg.resilience.watchdog.min_hang_timeout_s = 0.05;
    live_cfg.resilience.watchdog.poll_slice_s = 2e-3;
    live_cfg.resilience.breaker.enabled = true;
    live_cfg.resilience.breaker.window = 16;
    live_cfg.resilience.breaker.min_samples = 8;
    live_cfg.resilience.breaker.failure_threshold = 0.5;
    live_cfg.resilience.breaker.open_cooldown_s = 0.1;
    live_cfg.resilience.overload.admission_shedding = true;
    live_cfg.resilience.overload.aimd = true;

    printBanner(std::cout, "Chaos escalation soak");
    TablePrinter table({"Level", "Scale", "Admitted", "Completed",
                        "TimedOut", "Shed", "Failed", "Goodput",
                        "Hangs", "BrkOpens", "Poison"});

    std::vector<ChaosEntry> entries;
    bool violated = false;
    double prev_goodput = 1.0;
    std::size_t prev_stalls = 0;
    std::size_t prev_exceptions = 0;

    for (std::size_t level = 0; level < levels; ++level) {
        const double scale =
            levels > 1 ? static_cast<double>(level) /
                             static_cast<double>(levels - 1)
                       : 1.0;
        ChaosConfig chaos_cfg;
        chaos_cfg.worker_stall_rate = scale * stall_rate;
        chaos_cfg.worker_stall_s = 0.25;
        chaos_cfg.exception_rate = scale * exception_rate;
        chaos_cfg.exceptions_primary_only = true;
        chaos_cfg.slow_rate = scale * slow_rate;
        chaos_cfg.slow_extra_s = 10e-3;
        chaos_cfg.heartbeat_loss_rate = scale * heartbeat_loss_rate;
        const ChaosInjector chaos(chaos_cfg);

        // Chaos counters are process-global and cumulative: take the
        // per-level delta around the run.
        const std::size_t stalls0 = chaosCount("chaos.worker_stalls");
        const std::size_t excs0 = chaosCount("chaos.exceptions");
        const std::size_t slow0 = chaosCount("chaos.slow_batches");
        const std::size_t hb0 = chaosCount("chaos.heartbeat_losses");

        const std::size_t opens0 = [] {
            return static_cast<std::size_t>(
                obs::MetricsRegistry::instance()
                    .counter("serving.live.breaker.opens")
                    .value());
        }();

        LiveServingRuntime runtime(
            live_cfg, executor, nullptr,
            chaos_cfg.anyRateSet() ? &chaos : nullptr);
        std::vector<std::future<LiveRequestResult>> futures;
        futures.reserve(requests);
        for (std::size_t i = 0; i < requests; ++i) {
            auto f = runtime.submit(payloads[i % payloads.size()]);
            if (f.has_value())
                futures.push_back(std::move(*f));
        }
        for (auto &f : futures)
            (void)f.get();
        runtime.drain();
        const LiveServingStats s = runtime.stats();

        ChaosEntry e;
        e.level = level;
        e.scale = scale;
        e.submitted = s.submitted;
        e.admitted = s.submitted - s.rejected;
        e.completed = s.completed;
        e.timed_out = s.timed_out;
        e.shed = s.shed;
        e.failed = s.failed_requests;
        e.goodput_frac = s.availability;
        e.watchdog_hangs = s.watchdog_hangs;
        e.bisections = s.bisections;
        e.poison_isolated = s.poison_isolated;
        e.breaker_opens = s.breaker_opens - std::min(s.breaker_opens,
                                                     opens0);
        e.chaos_stalls = chaosCount("chaos.worker_stalls") - stalls0;
        e.chaos_exceptions = chaosCount("chaos.exceptions") - excs0;
        e.chaos_slow = chaosCount("chaos.slow_batches") - slow0;
        e.chaos_heartbeat_losses =
            chaosCount("chaos.heartbeat_losses") - hb0;

        // Invariant 1: conservation. Every admitted request resolved
        // to exactly one terminal outcome.
        e.conserved = e.completed + e.timed_out + e.shed + e.failed ==
                      e.admitted;
        if (!e.conserved) {
            std::cerr << "ERROR: conservation violated at level "
                      << level << ": completed=" << e.completed
                      << " + timed_out=" << e.timed_out
                      << " + shed=" << e.shed
                      << " + failed=" << e.failed
                      << " != admitted=" << e.admitted << "\n";
            violated = true;
        }

        // Invariant 2: the goodput floor. The HostLut fallback stays
        // healthy at every level, so the runtime must keep serving.
        if (e.admitted == 0 || e.goodput_frac <= 0.0) {
            std::cerr << "ERROR: goodput collapsed to zero at level "
                      << level << "\n";
            violated = true;
        }

        // Invariant 3: monotone degradation (with slack for thread
        // scheduling noise) — more chaos must not *improve* goodput
        // over the previous, gentler level.
        if (level > 0 && e.goodput_frac > prev_goodput + 0.15) {
            std::cerr << "ERROR: goodput rose from " << prev_goodput
                      << " to " << e.goodput_frac
                      << " under more chaos (level " << level << ")\n";
            violated = true;
        }
        prev_goodput = e.goodput_frac;

        // Invariant 4: coupled draws — raising the rates must not
        // *reduce* the fired event total. Retry/bisection dynamics
        // shift which (batch, attempt) keys get drawn between levels,
        // so allow headroom of half the previous total before calling
        // it a coupling violation.
        const std::size_t events = e.chaos_stalls + e.chaos_exceptions;
        const std::size_t prev_events = prev_stalls + prev_exceptions;
        if (level > 1 && events < prev_events / 2) {
            std::cerr << "ERROR: chaos event total fell from "
                      << prev_events << " to " << events
                      << " as rates rose (level " << level << ")\n";
            violated = true;
        }
        prev_stalls = e.chaos_stalls;
        prev_exceptions = e.chaos_exceptions;

        table.addRow({
            std::to_string(level),
            TablePrinter::fmt(scale, 2),
            std::to_string(e.admitted),
            std::to_string(e.completed),
            std::to_string(e.timed_out),
            std::to_string(e.shed),
            std::to_string(e.failed),
            TablePrinter::fmt(e.goodput_frac, 4),
            std::to_string(e.watchdog_hangs),
            std::to_string(e.breaker_opens),
            std::to_string(e.poison_isolated),
        });
        entries.push_back(e);
    }
    table.print(std::cout);

    if (emit_json)
        writeChaosJson(json_path, entries);
    writeBenchArtifacts(opts);

    if (violated) {
        std::cerr << "ERROR: chaos soak invariant violated (see "
                     "above)\n";
        return 1;
    }
    std::cout << "\nChaos soak passed: conservation held at every "
                 "level and goodput never collapsed ("
              << levels << " levels, " << requests
              << " requests each).\n";
    return 0;
}
