/**
 * @file
 * Model calibration algorithms (paper Section 4.2).
 *
 *  - trainDense: pre-trains the original ("Original" rows of Tables 4/5)
 *    model on a task.
 *  - calibrateElutNn: the paper's contribution — full-layer replacement
 *    with hard centroid assignment, Straight-Through Estimator gradients,
 *    and the reconstruction loss of Eq. (1), run on a small calibration
 *    fraction of the training data.
 *  - calibrateBaselineLutNn: the prior-work baseline — Gumbel-softmax
 *    style soft assignment without the reconstruction loss, trained on
 *    the full training set, then deployed with hard assignment.
 */

#ifndef PIMDL_LUTNN_ELUTNN_H
#define PIMDL_LUTNN_ELUTNN_H

#include "nn/classifier.h"
#include "nn/synthetic.h"

namespace pimdl {

/** Options for dense pre-training. */
struct TrainOptions
{
    std::size_t epochs = 30;
    std::size_t batch_size = 16;
    float lr = 3e-3f;
    std::uint64_t seed = 5;
};

/** How the per-layer codebooks are seeded before calibration. */
enum class CodebookInit
{
    /**
     * Random Gaussian centroids scaled to the activation distribution —
     * the paper's protocol ("the centroids are initialized randomly",
     * Section 6.2). Deployment accuracy then hinges entirely on the
     * calibration algorithm.
     */
    Random,
    /** K-means over collected activations (a strong classical seed). */
    KMeans,
};

/** Options for LUT-NN calibration. */
struct CalibrationOptions
{
    std::size_t epochs = 15;
    std::size_t batch_size = 16;
    float lr = 1e-3f;
    /** Reconstruction-loss penalty beta (Eq. 1). Zero disables the term. */
    float recon_beta = 1e-3f;
    /**
     * Fraction of the training set used for calibration. The paper's
     * eLUT-NN uses < 1%; the baseline uses 1.0 (the full set).
     */
    float data_fraction = 0.05f;
    /** Also fine-tune weights/biases ("minor parameter updates"). */
    bool update_weights = true;
    /** Samples used to seed codebooks (k-means or std estimation). */
    std::size_t codebook_init_samples = 64;
    /** Codebook seeding strategy. */
    CodebookInit init = CodebookInit::Random;
    std::uint64_t seed = 13;
};

/** Outcome of a training or calibration run. */
struct CalibrationReport
{
    /** Hard-LUT accuracy before calibration (k-means codebooks only). */
    float accuracy_before = 0.0f;
    /** Hard-LUT accuracy after calibration. */
    float accuracy_after = 0.0f;
    /** Per-epoch mean training loss. */
    std::vector<float> loss_history;
    /** Number of training samples the run consumed per epoch. */
    std::size_t samples_used = 0;
};

/** Pre-trains the dense model; returns the dense test accuracy. */
float trainDense(TransformerClassifier &model, const SyntheticTask &task,
                 const TrainOptions &options);

/**
 * Seeds every replaceable layer's codebooks by k-means over activations
 * collected from a dense forward pass of @p samples training sequences.
 */
void initCodebooksFromActivations(TransformerClassifier &model,
                                  const SequenceDataset &calibration,
                                  std::size_t samples, std::uint64_t seed);

/**
 * Seeds every replaceable layer's codebooks with random Gaussian
 * centroids scaled to that layer's activation standard deviation
 * (estimated from @p samples sequences) — the paper's initialization.
 */
void initCodebooksRandom(TransformerClassifier &model,
                         const SequenceDataset &calibration,
                         std::size_t samples, std::uint64_t seed);

/** Runs eLUT-NN calibration (hard assign + STE + reconstruction loss). */
CalibrationReport calibrateElutNn(TransformerClassifier &model,
                                  const SyntheticTask &task,
                                  const CalibrationOptions &options);

/** Runs the baseline LUT-NN calibration (soft assign, no recon loss). */
CalibrationReport calibrateBaselineLutNn(TransformerClassifier &model,
                                         const SyntheticTask &task,
                                         const CalibrationOptions &options);

} // namespace pimdl

#endif // PIMDL_LUTNN_ELUTNN_H
