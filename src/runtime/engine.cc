#include "engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tuner/cost_model.h"
#include "verify/verify.h"

namespace pimdl {

PimDlEngine::PimDlEngine(PimPlatformConfig platform,
                         HostProcessorConfig host)
    : platform_(platform), host_(std::move(host)),
      tuner_(std::move(platform)), tune_memo_(tuner_)
{}

namespace {

/** Display name of a host dtype for estimate labels. */
const char *
hostDtypeLabel(HostDtype dtype)
{
    switch (dtype) {
    case HostDtype::Fp32:
        return "FP32";
    case HostDtype::Int8:
        return "INT8";
    case HostDtype::Fp16:
        return "FP16";
    }
    return "?";
}

/** Roofline latency of a host-device plan node. */
double
hostNodeSeconds(const HostModel &hm, const Plan &plan,
                const PlanNode &node)
{
    switch (node.kind) {
    case PlanOpKind::Ccs:
        return hm.ccsSeconds(node.n, node.h, plan.params.centroids,
                             plan.params.subvec_len);
    case PlanOpKind::Gemm:
        return hm.gemmSeconds(node.n, node.h, node.f, node.dtype);
    case PlanOpKind::Attention:
        return hm.attentionSeconds(node.n, node.h, node.f, node.dtype);
    case PlanOpKind::Elementwise:
        return hm.elementwiseSeconds(node.ew_ops, node.ew_bytes);
    default:
        return 0.0;
    }
}

/** Publishes the metrics the seed engine exported for PIM-DL runs. */
void
publishPimDlMetrics(const InferenceEstimate &est)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    // Per-LinearRole CCS/LUT split (the Figure 11-(b) breakdown),
    // published as gauges holding the most recent estimate.
    for (const LinearLatency &layer : est.per_linear) {
        const std::string role = linearRoleName(layer.role);
        reg.gauge("engine.role." + role + ".ccs_s").set(layer.ccs_s);
        reg.gauge("engine.role." + role + ".lut_s").set(layer.lut_s);
    }
    static obs::Counter &estimates = reg.counter("engine.estimates");
    static obs::Histogram &h_ccs = reg.histogram("engine.ccs_s");
    static obs::Histogram &h_lut = reg.histogram("engine.lut_s");
    static obs::Histogram &h_total = reg.histogram("engine.total_s");
    estimates.add();
    h_ccs.record(est.ccs_s);
    h_lut.record(est.lut_s);
    h_total.record(est.total_s);
}

} // namespace

Plan
PimDlEngine::lower(const TransformerConfig &model,
                   const LutNnParams &params, ExecutionMode mode,
                   HostDtype dtype,
                   const LutMapping *mapping_override) const
{
    obs::TraceSpan span("plan.lower");
    span.attr("model", model.name);
    span.attr("mode", executionModeName(mode));

    LoweringOptions options;
    options.platform = &platform_;
    options.dtype = dtype;
    Plan plan = lowerTransformer(model, params, mode, options);
    if (mode == ExecutionMode::PimDl) {
        if (mapping_override)
            attachMappingOverride(plan, *mapping_override);
        else
            attachTunedMappings(plan, tune_memo_);
    }
    span.attr("nodes", static_cast<std::uint64_t>(plan.nodes.size()));
    return plan;
}

NodeCost
PimDlEngine::costNode(const Plan &plan, const PlanNode &node) const
{
    NodeCost cost;
    switch (node.kind) {
    case PlanOpKind::LutOp: {
        PIMDL_REQUIRE(node.mapping_attached,
                      "LutOp node costed before a mapping was attached");
        const LutCostBreakdown lut =
            evaluateLutMapping(platform_, node.lut_shape, node.mapping);
        PIMDL_REQUIRE(lut.legal,
                      "mapping illegal for workload " +
                          std::string(linearRoleName(node.role)) + ": " +
                          lut.illegal_reason);
        cost.seconds = lut.total();
        break;
    }
    case PlanOpKind::Gemm:
        if (node.device == PlanDevice::Pim) {
            cost.seconds = pimGemmLinearSeconds(node.n, node.h, node.f,
                                                node.dtype,
                                                plan.model.batch) +
                           platform_.kernel_launch_overhead_s;
        } else {
            cost.seconds = hostNodeSeconds(host_, plan, node);
        }
        break;
    case PlanOpKind::Elementwise:
        if (node.device == PlanDevice::Pim) {
            // Bandwidth-bound elementwise work on the bank-level units
            // (paper Figure 6-(b) offloading choice).
            cost.seconds =
                std::max(node.ew_ops / platform_.totalAddThroughput(),
                         node.ew_bytes / platform_.totalStreamBandwidth());
        } else {
            cost.seconds = hostNodeSeconds(host_, plan, node);
        }
        break;
    case PlanOpKind::HostPimTransfer:
        // Transfer latency is folded into the producing op's analytical
        // cost; transfer nodes carry the unique link-traffic accounting.
        cost.link_bytes = node.transfer_bytes;
        break;
    case PlanOpKind::Ccs:
    case PlanOpKind::Attention:
        cost.seconds = hostNodeSeconds(host_, plan, node);
        break;
    }
    return cost;
}

CostedPlan
PimDlEngine::cost(const Plan &plan) const
{
    // Lowering validates the structural graph, but mapping attachment
    // mutates nodes afterwards — re-validate every plan entering the
    // cost model, and run the full verifier pipeline when enabled.
    plan.validate();
    if (verify::verifyPlansEnabled())
        verify::verifyPlanOrThrow(plan, &platform_);

    CostedPlan costed;
    costed.plan = plan;
    costed.costs.reserve(plan.nodes.size());
    for (const PlanNode &node : plan.nodes)
        costed.costs.push_back(costNode(plan, node));
    return costed;
}

InferenceEstimate
PimDlEngine::estimate(const TransformerConfig &model,
                      const LutNnParams &params, ExecutionMode mode,
                      const Scheduler &scheduler, HostDtype dtype,
                      const LutMapping *mapping_override) const
{
    obs::TraceSpan top("engine.estimate");
    top.attr("model", model.name);
    top.attr("batch", static_cast<std::uint64_t>(model.batch));
    top.attr("platform", platform_.name);
    top.attr("mode", executionModeName(mode));
    top.attr("scheduler", scheduler.name());

    const Plan plan = lower(model, params, mode, dtype, mapping_override);
    const CostedPlan costed = cost(plan);

    ScheduleResult scheduled;
    {
        obs::TraceSpan span("plan.schedule");
        span.attr("scheduler", scheduler.name());
        span.attr("nodes",
                  static_cast<std::uint64_t>(plan.nodes.size()));
        scheduled = scheduler.schedule(costed);
    }
    obs::MetricsRegistry::instance()
        .counter("plan.nodes_scheduled")
        .add(plan.nodes.size());
    if (verify::verifyPlansEnabled()) {
        verify::requireClean(verify::verifyScheduleResult(
                                 costed, scheduled, scheduler.policy()),
                             "schedule verification");
    }

    InferenceEstimate est = std::move(scheduled.estimate);
    switch (mode) {
    case ExecutionMode::PimDl:
        est.label = "PIM-DL(V=" + std::to_string(params.subvec_len) +
                    ",CT=" + std::to_string(params.centroids) + ")@" +
                    platform_.name;
        break;
    case ExecutionMode::PimGemm:
        est.label = "PIM-GEMM@" + platform_.name;
        break;
    case ExecutionMode::HostOnly:
        est.label = host_.config().name + "(" + hostDtypeLabel(dtype) +
                    ")";
        break;
    }
    if (scheduler.policy() != SchedulePolicy::Sequential)
        est.label += std::string("+") + scheduler.name();

    if (mode == ExecutionMode::HostOnly) {
        est.energy.host_joules = host_.config().power_w * est.total_s;
    } else {
        // PIM-DIMMs stay powered for the whole inference (no DVFS), so
        // PIM energy integrates static power over total wall time.
        const EnergyModel energy_model(platform_);
        est.energy = energy_model.energy(est.total_s, est.host_busy_s,
                                         est.link_bytes);
    }

    if (mode == ExecutionMode::PimDl)
        publishPimDlMetrics(est);
    top.attr("total_s", est.total_s);
    return est;
}

InferenceEstimate
PimDlEngine::estimatePimDl(const TransformerConfig &model,
                           const LutNnParams &params) const
{
    return estimate(model, params, ExecutionMode::PimDl,
                    schedulerFor(SchedulePolicy::Sequential));
}

InferenceEstimate
PimDlEngine::estimatePimDlWithMapping(const TransformerConfig &model,
                                      const LutNnParams &params,
                                      const LutMapping &mapping) const
{
    return estimate(model, params, ExecutionMode::PimDl,
                    schedulerFor(SchedulePolicy::Sequential),
                    HostDtype::Fp32, &mapping);
}

InferenceEstimate
PimDlEngine::estimatePimDlPipelined(const TransformerConfig &model,
                                    const LutNnParams &params) const
{
    return estimate(model, params, ExecutionMode::PimDl,
                    schedulerFor(SchedulePolicy::Pipelined));
}

InferenceEstimate
PimDlEngine::estimatePimGemm(const TransformerConfig &model,
                             HostDtype dtype) const
{
    return estimate(model, {}, ExecutionMode::PimGemm,
                    schedulerFor(SchedulePolicy::Sequential), dtype);
}

InferenceEstimate
PimDlEngine::estimateHostOnly(const TransformerConfig &model,
                              HostDtype dtype) const
{
    return estimate(model, {}, ExecutionMode::HostOnly,
                    schedulerFor(SchedulePolicy::Sequential), dtype);
}

double
PimDlEngine::pimGemmLinearSeconds(std::size_t n, std::size_t h,
                                  std::size_t f, HostDtype dtype,
                                  std::size_t batch) const
{
    const double elem = hostDtypeBytes(dtype);
    const double ops = 2.0 * static_cast<double>(n) * h * f;
    const double num_pes = static_cast<double>(platform_.num_pes);

    if (platform_.product == PimProduct::UpmemDimm) {
        // DPUs have no hardware multiplier: a MAC costs one microcoded
        // multiply plus one add. Compute utterly dominates.
        const double mac_rate =
            1.0 / (1.0 / platform_.pe_mul_ops_per_s +
                   1.0 / platform_.pe_add_ops_per_s);
        const double compute = (ops / 2.0) / (mac_rate * num_pes);

        // Activation broadcast and result gather (eq. 4 pattern), with the
        // same group/lane partition as LUT operators.
        const double act_bytes = static_cast<double>(n) * h * elem;
        const double out_bytes = static_cast<double>(n) * f * 4.0;
        const double transfer =
            act_bytes / platform_.host_broadcast.peak * 8.0 +
            out_bytes / platform_.host_gather.peak;

        // Weights stream from MRAM once per activation row block.
        const double weight_bytes_per_pe = static_cast<double>(h) * f *
                                           elem / num_pes *
                                           (static_cast<double>(n) / 64.0);
        const double stream =
            weight_bytes_per_pe / platform_.pe_stream.peak;
        return std::max(compute, stream) + transfer;
    }

    // HBM-PIM / AiM: bank-level GEMV engines. Batched GEMM degenerates
    // into per-row GEMV commands that re-stream the full weight matrix
    // from the banks; the GEMV dataflow's utilization improves with
    // wider (flatter) matrices and degrades as the batch grows (paper
    // Section 6.7). The utilization curve below is a calibration
    // parameter documented in DESIGN.md.
    const double weight_stream_bytes =
        static_cast<double>(n) * h * f * elem;
    // The GEMV command stream keeps only a small slice of the banks
    // busy: wider matrices help, batching hurts, and AiM's GEMV engine
    // (purpose-built MAC-per-bank) sustains about twice HBM-PIM's
    // utilization.
    const double product_factor =
        platform_.product == PimProduct::Aim ? 2.0 : 1.0;
    const double shape_util =
        std::min(1.0, (0.02 + static_cast<double>(h) / 80000.0) *
                          product_factor);
    const double batch_penalty = 1.0 + 0.16 * static_cast<double>(batch);
    const double eff_bw =
        platform_.totalStreamBandwidth() * shape_util / batch_penalty;
    const double stream = weight_stream_bytes / eff_bw;
    const double compute = ops / platform_.totalAddThroughput();
    const double cmd_overhead =
        static_cast<double>(n) * platform_.kernel_launch_overhead_s;
    return std::max(stream, compute) + cmd_overhead;
}

InferenceEstimate
estimateHostInference(const HostProcessorConfig &host,
                      const TransformerConfig &model, HostDtype dtype)
{
    const HostModel hm(host);
    LoweringOptions options;
    options.dtype = dtype;
    const Plan plan =
        lowerTransformer(model, {}, ExecutionMode::HostOnly, options);

    CostedPlan costed;
    costed.plan = plan;
    costed.costs.reserve(plan.nodes.size());
    for (const PlanNode &node : plan.nodes)
        costed.costs.push_back({hostNodeSeconds(hm, plan, node), 0.0});

    ScheduleResult scheduled =
        schedulerFor(SchedulePolicy::Sequential).schedule(costed);
    if (verify::verifyPlansEnabled()) {
        verify::verifyPlanOrThrow(plan);
        verify::requireClean(
            verify::verifyScheduleResult(costed, scheduled,
                                         SchedulePolicy::Sequential),
            "schedule verification");
    }
    InferenceEstimate est = std::move(scheduled.estimate);
    est.label = host.name + "(" + hostDtypeLabel(dtype) + ")";
    est.energy.host_joules = host.power_w * est.total_s;
    return est;
}

} // namespace pimdl
