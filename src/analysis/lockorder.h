/**
 * @file
 * Runtime lock-order analysis: potential-deadlock detection for the
 * annotated Mutex/CondVar primitives (common/thread_annotations.h).
 *
 * Clang's thread-safety analysis and TSan catch unguarded access and
 * races that *manifest*; neither catches a lock-order inversion that
 * only deadlocks under an unlucky interleaving. This layer does: every
 * tracked acquisition records a (held -> acquired) edge in one global
 * lock-order graph, and inserting an edge that closes a cycle reports
 * the potential ABBA deadlock deterministically the first time the
 * inverted order is exercised on ANY interleaving — no hang required
 * (the abseil GraphCycles idea). On top of the cycle check it detects
 * self-deadlock (re-acquiring a held non-recursive mutex), waiting on
 * a CondVar while holding a *different* mutex (the held one stays
 * locked for the whole blocked wait), and warns when a lock is held
 * longer than a configurable budget.
 *
 * Layering: this library depends on the C++ standard library only —
 * thread_annotations.h (pimdl_common) calls DOWN into these hooks, and
 * obs/snapshot.cc mirrors lockOrderStats() into analysis.lockorder.*
 * metrics, so neither obs nor common is a dependency here. Violations
 * are reported through an injectable handler (stderr by default) and a
 * policy (log / throw / fatal).
 *
 * Cost: when disabled every hook is one relaxed atomic load; tracked
 * mode takes one global tracker mutex per lock/unlock, which is why
 * the switch exists (debug builds default on, release builds opt in
 * via PIMDL_DEADLOCK_CHECK=1 or setDeadlockCheckEnabled(true)).
 */

#ifndef PIMDL_ANALYSIS_LOCKORDER_H
#define PIMDL_ANALYSIS_LOCKORDER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace pimdl {
namespace analysis {

/** File/line of a lock acquisition, captured at the call site via the
 * PIMDL_CALLER_SITE default argument (no macros at call sites). */
struct LockSite
{
    const char *file = "?";
    int line = 0;

#if defined(__clang__) || defined(__GNUC__)
    /** std::source_location::current() idiom: as a default argument
     * of current(), the builtins take the location where current() is
     * invoked — which, via PIMDL_CALLER_SITE, is the caller of
     * lock()/MutexLock/wait(). (The builtins must NOT sit directly in
     * a braced-init-list default argument: GCC then reports the
     * declaration's own location instead of the caller's.) */
    static LockSite
    current(const char *file = __builtin_FILE(),
            int line = __builtin_LINE())
    {
        return LockSite{file, line};
    }
#else
    static LockSite current() { return LockSite{}; }
#endif
};

#define PIMDL_CALLER_SITE ::pimdl::analysis::LockSite::current()

/** What went wrong; HoldBudget is a warning (never throws/aborts). */
enum class ViolationKind
{
    LockOrderCycle,
    SelfLock,
    WaitWhileHolding,
    HoldBudget,
};

const char *violationKindName(ViolationKind kind);

/** One detected violation, with a fully rendered report message that
 * names every involved mutex and its acquisition site. */
struct Violation
{
    ViolationKind kind = ViolationKind::LockOrderCycle;
    std::string message;
};

/** Thrown by the hooks under LockOrderPolicy::Throw (tests use this
 * to assert a seeded inversion is caught without hanging). */
class LockOrderViolation : public std::runtime_error
{
  public:
    LockOrderViolation(ViolationKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    ViolationKind kind() const { return kind_; }

  private:
    ViolationKind kind_;
};

/** What happens after a violation is counted and handed to the
 * handler. HoldBudget warnings always behave as Log. */
enum class LockOrderPolicy
{
    /** Report and continue (default). */
    Log,
    /** Throw LockOrderViolation from the acquiring thread. */
    Throw,
    /** Print and std::abort() — serving deployments that prefer a
     * crash dump over a latent deadlock. */
    Fatal,
};

/** Monotonic totals since process start (never reset; readers diff). */
struct LockOrderStats
{
    std::uint64_t acquisitions = 0;
    std::uint64_t edges_added = 0;
    std::uint64_t cycles = 0;
    std::uint64_t self_locks = 0;
    std::uint64_t wait_while_holding = 0;
    std::uint64_t hold_budget_exceeded = 0;
    /** Currently registered (live) mutexes / order edges. */
    std::uint64_t locks_live = 0;
    std::uint64_t edges_live = 0;
};

LockOrderStats lockOrderStats();

/**
 * Master switch. Resolution: setDeadlockCheckEnabled() override, else
 * the PIMDL_DEADLOCK_CHECK environment variable ("0"/"off"/"false"/
 * "no" disable, anything else enables), else on in debug builds
 * (!NDEBUG) and off in release.
 */
bool deadlockCheckEnabled();
void setDeadlockCheckEnabled(bool enabled);

/** Violation policy: setLockOrderPolicy() override, else the
 * PIMDL_DEADLOCK_POLICY environment variable ("log"/"throw"/"fatal"),
 * else Log. */
LockOrderPolicy lockOrderPolicy();
void setLockOrderPolicy(LockOrderPolicy policy);

/**
 * Hold-time budget, seconds: a release (or CondVar wait) of a lock
 * held longer than this counts a HoldBudget warning. <= 0 disables.
 * Default: 1.0s, or the PIMDL_LOCK_HOLD_BUDGET_S environment variable.
 */
double lockHoldBudgetS();
void setLockHoldBudgetS(double seconds);

/**
 * Replaces the violation sink (nullptr restores the stderr default).
 * Called before the policy acts, from the violating thread, with no
 * tracker lock held. Tests install a capturing handler.
 */
void setViolationHandler(std::function<void(const Violation &)> handler);

// --- Hooks wired into Mutex/CondVar (thread_annotations.h). ---------
// @p mu is an opaque identity (the Mutex address); @p name is a
// static-lifetime label or nullptr. Every hook is a no-op while
// deadlockCheckEnabled() is false.

/** Pre-lock: self-lock check, order-edge insertion + cycle check,
 * held-stack push. Runs BEFORE blocking on the underlying mutex so a
 * potential deadlock is reported even when the lock would hang. */
void onMutexAcquire(const void *mu, const char *name, LockSite site);

/** Post-lock: stamps the hold-start time (thread-local only). */
void onMutexAcquired(const void *mu);

/** Successful tryLock: pushes the held entry WITHOUT order edges (a
 * non-blocking acquisition cannot be the blocked arc of a deadlock). */
void onMutexTryAcquired(const void *mu, const char *name, LockSite site);

/** Pre-unlock: pops the held entry, checks the hold budget. */
void onMutexRelease(const void *mu);

/** Mutex destruction: unregisters the node and its edges (addresses
 * get reused; a stale node would fabricate false orders). */
void onMutexDestroy(const void *mu);

/**
 * CondVar wait entry: reports WaitWhileHolding when any mutex other
 * than @p mu is still held — it stays locked for the entire blocked
 * wait, which is a deadlock the order graph cannot see. The release/
 * reacquire of @p mu itself is tracked by the Mutex lock/unlock hooks
 * (condition_variable_any drives them directly).
 */
void onCondVarWait(const void *mu, const char *cv_name, LockSite site);

namespace detail {

/** -1 unresolved, 0 off, 1 on; resolved lazily from env/build. */
extern std::atomic<int> g_lockorder_state;
int resolveLockOrderState();

} // namespace detail

/** Inline fast path for the Mutex hooks: one relaxed load when the
 * state is resolved (the common case after the first acquisition). */
inline bool
deadlockCheckActive()
{
    const int state =
        detail::g_lockorder_state.load(std::memory_order_relaxed);
    if (state >= 0)
        return state != 0;
    return detail::resolveLockOrderState() != 0;
}

} // namespace analysis
} // namespace pimdl

#endif // PIMDL_ANALYSIS_LOCKORDER_H
