/**
 * @file
 * Binary serialization of converted LUT-NN models.
 *
 * A deployed PIM-DL service converts a model once (calibration is
 * expensive) and ships the codebooks + LUTs to serving hosts; this
 * module provides the persistent format: a versioned container holding
 * named LutLayers (shape, codebooks, weights, bias, and the INT8
 * quantization flag). Little-endian, magic "PDLM".
 */

#ifndef PIMDL_LUTNN_SERIALIZE_H
#define PIMDL_LUTNN_SERIALIZE_H

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "lutnn/lut_layer.h"

namespace pimdl {

/** A named collection of converted layers (one transformer's linears). */
struct LutModelBundle
{
    std::vector<std::pair<std::string, LutLayer>> layers;

    /** Returns the layer with @p name; throws if absent. */
    const LutLayer &layer(const std::string &name) const;
};

/** Writes one layer to a stream. */
void saveLutLayer(std::ostream &out, const LutLayer &layer);

/** Reads one layer from a stream (throws on malformed input). */
LutLayer loadLutLayer(std::istream &in);

/** Writes a bundle to a stream. */
void saveLutModel(std::ostream &out, const LutModelBundle &bundle);

/** Reads a bundle from a stream. */
LutModelBundle loadLutModel(std::istream &in);

/** File-path conveniences. */
void saveLutModelFile(const std::string &path,
                      const LutModelBundle &bundle);
LutModelBundle loadLutModelFile(const std::string &path);

} // namespace pimdl

#endif // PIMDL_LUTNN_SERIALIZE_H
