/**
 * @file
 * Double-buffered transfer staging: a TransferScheduler owns one
 * background transfer thread (the simulated DMA engine of the host
 * link) draining a queue of staging jobs; each StagingChannel owns two
 * staging buffers so the fill of burst k+1 runs on the transfer thread
 * while the consumer computes on burst k — the "UPMEM Unleashed"
 * overlap mechanism as executable code, not a cost-model term.
 *
 * Protocol per channel slot: Free -> Queued (stage() reserved it) ->
 * Filling (transfer thread runs the fill) -> Ready (wait() may return
 * it) -> Held (consumer reads it) -> Free (release()). stage() blocks
 * while both slots are busy — that back-pressure is the double buffer.
 * All state is guarded by one annotated Mutex per channel plus the job
 * queue's own lock; no path ever holds both, so the runtime lock-order
 * detector sees no edge between them.
 *
 * Fault injection moves to per-burst granularity here (streams 301+):
 * each staged burst draws corruption and stall outcomes keyed by its
 * global sequence number and attempt. A corrupted fill is detected by
 * checksum and re-staged under the retry policy; penalties accumulate
 * as modeled seconds on the burst, never as wall sleeps, so accounting
 * stays ManualClock-deterministic.
 */

#ifndef PIMDL_TRANSFER_SCHEDULER_H
#define PIMDL_TRANSFER_SCHEDULER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mpmc_queue.h"
#include "common/thread_annotations.h"
#include "fault/fault.h"

namespace pimdl {
namespace transfer {

/** Per-burst fault draw streams (transfer engine range: 301+; fault.h
 * owns 1-6 and 101, chaos.h owns 201+). */
inline constexpr std::uint64_t kTransferBurstCorruptStream = 301;
inline constexpr std::uint64_t kTransferBurstStallStream = 302;
inline constexpr std::uint64_t kTransferBurstTargetStream = 303;

/** One staging request: how many bytes, how to fill them, and what
 * the burst costs in modeled link seconds. */
struct StageRequest
{
    std::size_t bytes = 0;
    /** Runs on the transfer thread (or inline in synchronous mode);
     * must completely overwrite dst[0, bytes). */
    std::function<void(std::uint8_t *dst, std::size_t bytes)> fill;
    /** Modeled link seconds of this burst (engine pricing). */
    double modeled_seconds = 0.0;
};

/** Outcome accounting of one staged burst. */
struct StagedBurstReport
{
    std::size_t corrupt_retries = 0;
    std::size_t stalls = 0;
    /** Modeled stall/re-stage seconds added to the burst. */
    double added_seconds = 0.0;
};

/** Aggregate accounting of a scheduler's lifetime. */
struct TransferSchedulerStats
{
    std::uint64_t bursts_staged = 0;
    double staged_bytes = 0.0;
    std::uint64_t stalls = 0;
    std::uint64_t corrupt_retries = 0;
    /** Wall seconds the transfer thread spent filling buffers. */
    double fill_wall_s = 0.0;
    /** Wall seconds consumers spent blocked in wait(). */
    double wait_wall_s = 0.0;
};

class StagingChannel;

/**
 * Owns the transfer thread and the staging job queue. Channels opened
 * from a scheduler must not outlive it. In synchronous mode no thread
 * is started and fills run inline inside stage() — the unbuffered
 * baseline the bit-exactness tests compare against, with identical
 * data flow and fault draws.
 */
class TransferScheduler
{
  public:
    struct Options
    {
        /** Pending staging jobs before stage() blocks. */
        std::size_t queue_capacity = 64;
        /** Injectable time source for wall accounting. */
        Clock *clock = nullptr;
        /** Per-burst fault draws (nullptr = fault-free). */
        const FaultInjector *faults = nullptr;
        RetryPolicy retry;
        /** Run fills inline; no transfer thread, no overlap. */
        bool synchronous = false;
    };

    explicit TransferScheduler(Options options);
    ~TransferScheduler();

    TransferScheduler(const TransferScheduler &) = delete;
    TransferScheduler &operator=(const TransferScheduler &) = delete;

    /**
     * Opens a double-buffered staging channel. Thread-safe; channels
     * are independent and may be used from different threads, all
     * sharing the one transfer thread. @p name labels the channel's
     * lock in lock-order reports (static string literal).
     */
    std::unique_ptr<StagingChannel> openChannel(const char *name);

    bool synchronous() const { return options_.synchronous; }

    TransferSchedulerStats stats() const PIMDL_EXCLUDES(stats_mu_);

  private:
    friend class StagingChannel;

    struct Job
    {
        StagingChannel *channel = nullptr;
        std::size_t slot = 0;
    };

    Options options_;
    Clock *clock_ = nullptr;
    BoundedMpmcQueue<Job> jobs_;
    std::thread worker_;
    /** Global burst sequence: the per-burst fault draw key. */
    std::atomic<std::uint64_t> burst_seq_{0};

    mutable Mutex stats_mu_{"transfer.scheduler.stats"};
    TransferSchedulerStats stats_ PIMDL_GUARDED_BY(stats_mu_);

    void workerLoop();
    /** Fills one slot, applying per-burst fault draws and retries. */
    void runFill(StagingChannel *channel, std::size_t slot);
    void recordFill(double bytes, double wall_s,
                    const StagedBurstReport &report)
        PIMDL_EXCLUDES(stats_mu_);
    void recordWait(double wall_s) PIMDL_EXCLUDES(stats_mu_);
};

/**
 * Two staging buffers over one producer/consumer pair. Not itself
 * thread-safe across consumers: one logical consumer drives stage()/
 * wait()/release() (possibly from different threads over time, as the
 * serving runtime's batcher/worker handoff does); the transfer thread
 * is the only other party, synchronized by the channel mutex.
 */
class StagingChannel
{
  public:
    ~StagingChannel();

    StagingChannel(const StagingChannel &) = delete;
    StagingChannel &operator=(const StagingChannel &) = delete;

    /**
     * Reserves the next staging slot and enqueues the fill; returns
     * the slot ticket to pass to wait()/release(). Blocks while both
     * slots are occupied (the double-buffer back-pressure). In
     * synchronous mode the fill runs inline before returning.
     */
    std::size_t stage(StageRequest request) PIMDL_EXCLUDES(mu_);

    /** Blocks until the ticket's fill completed; the returned buffer
     * stays valid until release(ticket). */
    const std::vector<std::uint8_t> &wait(std::size_t ticket)
        PIMDL_EXCLUDES(mu_);

    /** Per-burst fault accounting of a staged ticket (valid between
     * wait() and release()). */
    StagedBurstReport report(std::size_t ticket) const
        PIMDL_EXCLUDES(mu_);

    /** Returns the ticket's buffer to the free pool. */
    void release(std::size_t ticket) PIMDL_EXCLUDES(mu_);

  private:
    friend class TransferScheduler;

    enum class SlotState
    {
        Free,
        Queued,
        Filling,
        Ready,
        Held,
    };

    struct Slot
    {
        SlotState state = SlotState::Free;
        std::vector<std::uint8_t> data;
        StageRequest request;
        StagedBurstReport report;
        std::uint64_t seq = 0;
    };

    explicit StagingChannel(TransferScheduler *scheduler,
                            const char *name);

    TransferScheduler *scheduler_;
    mutable Mutex mu_;
    CondVar cv_{"transfer.channel"};
    Slot slots_[2] PIMDL_GUARDED_BY(mu_);
    std::size_t next_slot_ PIMDL_GUARDED_BY(mu_) = 0;
};

} // namespace transfer
} // namespace pimdl

#endif // PIMDL_TRANSFER_SCHEDULER_H
