# Empty dependencies file for bench_fig14_hbm_aim.
# This may be replaced when dependencies are built.
