/** @file LUT model serialization round-trip tests. */

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lutnn/converter.h"
#include "lutnn/serialize.h"

namespace pimdl {
namespace {

LutLayer
makeLayer(std::uint64_t seed, bool quantize, bool bias)
{
    Rng rng(seed);
    Tensor w(12, 10);
    w.fillGaussian(rng);
    Tensor calib(96, 12);
    calib.fillGaussian(rng);
    ConvertOptions options;
    options.subvec_len = 3;
    options.centroids = 8;
    options.quantize_int8 = quantize;
    std::vector<float> b;
    if (bias) {
        b.resize(10);
        for (std::size_t i = 0; i < b.size(); ++i)
            b[i] = 0.1f * static_cast<float>(i);
    }
    return convertLinearLayer(w, b, calib, options);
}

TEST(Serialize, LayerRoundTripPreservesOutputs)
{
    LutLayer layer = makeLayer(1, false, true);
    std::stringstream buffer;
    saveLutLayer(buffer, layer);
    LutLayer loaded = loadLutLayer(buffer);

    Rng rng(2);
    Tensor input(17, 12);
    input.fillGaussian(rng);
    EXPECT_LT(maxAbsDiff(layer.forward(input), loaded.forward(input)),
              1e-6f);
    EXPECT_EQ(loaded.shape().subvec_len, 3u);
    EXPECT_EQ(loaded.bias().size(), 10u);
}

TEST(Serialize, QuantizationFlagSurvives)
{
    LutLayer layer = makeLayer(3, true, false);
    std::stringstream buffer;
    saveLutLayer(buffer, layer);
    LutLayer loaded = loadLutLayer(buffer);
    EXPECT_TRUE(loaded.hasQuantizedTables());

    Rng rng(4);
    Tensor input(9, 12);
    input.fillGaussian(rng);
    EXPECT_LT(maxAbsDiff(layer.forwardQuantized(input),
                         loaded.forwardQuantized(input)),
              1e-6f);
}

TEST(Serialize, BundleRoundTrip)
{
    LutModelBundle bundle;
    bundle.layers.emplace_back("qkv", makeLayer(5, true, true));
    bundle.layers.emplace_back("ffn1", makeLayer(6, false, false));

    std::stringstream buffer;
    saveLutModel(buffer, bundle);
    LutModelBundle loaded = loadLutModel(buffer);
    ASSERT_EQ(loaded.layers.size(), 2u);
    EXPECT_EQ(loaded.layers[0].first, "qkv");
    EXPECT_NO_THROW(loaded.layer("ffn1"));
    EXPECT_THROW(loaded.layer("missing"), std::runtime_error);
}

TEST(Serialize, FileRoundTrip)
{
    const std::string path = "/tmp/pimdl_test_model.bin";
    LutModelBundle bundle;
    bundle.layers.emplace_back("only", makeLayer(7, true, true));
    saveLutModelFile(path, bundle);
    LutModelBundle loaded = loadLutModelFile(path);
    EXPECT_EQ(loaded.layers.size(), 1u);
    std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageMagic)
{
    std::stringstream buffer;
    buffer.write("NOPE", 4);
    buffer.write("\0\0\0\0\0\0\0\0", 8);
    EXPECT_THROW(loadLutModel(buffer), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream)
{
    LutLayer layer = makeLayer(8, false, false);
    std::stringstream buffer;
    saveLutLayer(buffer, layer);
    const std::string full = buffer.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(loadLutLayer(cut), std::runtime_error);
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(loadLutModelFile("/nonexistent/dir/model.bin"),
                 std::runtime_error);
}

TEST(Serialize, TruncationAtEveryOffsetThrows)
{
    LutLayer layer = makeLayer(9, true, true);
    std::stringstream buffer;
    saveLutLayer(buffer, layer);
    const std::string full = buffer.str();
    ASSERT_GT(full.size(), 24u); // header + payload
    for (std::size_t len = 0; len < full.size(); ++len) {
        std::stringstream cut(full.substr(0, len));
        EXPECT_THROW(loadLutLayer(cut), std::runtime_error)
            << "prefix of " << len << " bytes parsed";
    }
}

TEST(Serialize, BundleTruncationInHeaderThrows)
{
    LutModelBundle bundle;
    bundle.layers.emplace_back("layer-a", makeLayer(10, false, false));
    std::stringstream buffer;
    saveLutModel(buffer, bundle);
    const std::string full = buffer.str();
    // Magic, version, count, name length, name: every prefix rejects.
    for (std::size_t len = 0; len < 19; ++len) {
        std::stringstream cut(full.substr(0, len));
        EXPECT_THROW(loadLutModel(cut), std::runtime_error) << len;
    }
}

TEST(Serialize, CorruptedHeaderBytesNeverCrash)
{
    LutModelBundle bundle;
    bundle.layers.emplace_back("l", makeLayer(11, true, true));
    std::stringstream buffer;
    saveLutModel(buffer, bundle);
    const std::string full = buffer.str();
    // Stress the whole fixed header region: magic, version, count,
    // name, layer dims and flags. Each flip must either parse (benign)
    // or raise std::runtime_error -- never crash or over-allocate.
    const std::size_t header = std::min<std::size_t>(full.size(), 48);
    for (std::size_t off = 0; off < header; ++off) {
        for (unsigned flip : {0x01u, 0x80u, 0xffu}) {
            std::string bad = full;
            bad[off] = static_cast<char>(
                static_cast<unsigned char>(bad[off]) ^ flip);
            std::stringstream in(bad);
            try {
                const LutModelBundle loaded = loadLutModel(in);
                (void)loaded;
            } catch (const std::runtime_error &) {
                // Descriptive rejection is the expected outcome.
            }
        }
    }
}

TEST(Serialize, RejectsOversizedHeaderFields)
{
    // Hand-built header with a huge input_dim: the loader must bound
    // the field before allocating anything.
    std::stringstream buffer;
    const auto put = [&](std::uint32_t v) {
        buffer.write(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    put(0xffffffffu); // input_dim way past the sanity ceiling
    put(10);
    put(3);
    put(8);
    put(0);
    put(0);
    EXPECT_THROW(loadLutLayer(buffer), std::runtime_error);

    // A malformed flag (not 0/1) is rejected too.
    std::stringstream flags;
    const auto put2 = [&](std::uint32_t v) {
        flags.write(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    put2(12);
    put2(10);
    put2(3);
    put2(8);
    put2(2); // quantized flag must be 0 or 1
    put2(0);
    EXPECT_THROW(loadLutLayer(flags), std::runtime_error);
}

} // namespace
} // namespace pimdl
