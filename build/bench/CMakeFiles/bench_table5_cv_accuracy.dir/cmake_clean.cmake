file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_cv_accuracy.dir/bench_table5_cv_accuracy.cc.o"
  "CMakeFiles/bench_table5_cv_accuracy.dir/bench_table5_cv_accuracy.cc.o.d"
  "bench_table5_cv_accuracy"
  "bench_table5_cv_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_cv_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
