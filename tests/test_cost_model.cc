/** @file Analytical cost model tests (paper Eq. 3-10). */

#include <gtest/gtest.h>

#include "tuner/autotuner.h"
#include "tuner/cost_model.h"

namespace pimdl {
namespace {

LutWorkloadShape
bertLargeFfn1()
{
    // Paper Section 6.6 case study: (N, CB, CT, F) = (32768,256,16,4096).
    LutWorkloadShape shape;
    shape.n = 32768;
    shape.cb = 256;
    shape.ct = 16;
    shape.f = 4096;
    return shape;
}

LutMapping
referenceMapping()
{
    LutMapping m;
    m.ns_tile = 512;   // 64 groups
    m.fs_tile = 256;   // 16 lanes -> 1024 PEs
    m.nm_tile = 8;
    m.fm_tile = 64;
    m.cbm_tile = 16;
    m.order = TraversalOrder::NFC;
    m.scheme = LutLoadScheme::CoarseGrain;
    m.cb_load_tile = 2;
    m.f_load_tile = 8;
    return m;
}

TEST(CostModel, ReferenceMappingIsLegal)
{
    std::string reason;
    EXPECT_TRUE(mappingIsLegal(upmemPlatform(), bertLargeFfn1(),
                               referenceMapping(), &reason))
        << reason;
}

TEST(CostModel, RejectsNonDividingTiles)
{
    LutMapping m = referenceMapping();
    m.ns_tile = 500; // does not divide 32768
    std::string reason;
    EXPECT_FALSE(mappingIsLegal(upmemPlatform(), bertLargeFfn1(), m,
                                &reason));
    EXPECT_NE(reason.find("ns_tile"), std::string::npos);
}

TEST(CostModel, RejectsOversubscribedPes)
{
    LutMapping m = referenceMapping();
    m.ns_tile = 32; // 1024 groups x 16 lanes = 16384 PEs > 1024.
    EXPECT_FALSE(mappingIsLegal(upmemPlatform(), bertLargeFfn1(), m));
}

TEST(CostModel, RejectsBufferOverflow)
{
    LutMapping m = referenceMapping();
    m.scheme = LutLoadScheme::Static; // 256*16*256 B = 1 MiB > 64 KiB WRAM
    std::string reason;
    EXPECT_FALSE(mappingIsLegal(upmemPlatform(), bertLargeFfn1(), m,
                                &reason));
    EXPECT_NE(reason.find("buffer"), std::string::npos);
}

TEST(CostModel, StaticSchemeLegalWhenLutFits)
{
    // Paper sets (16384, 8) for the static scheme on this workload:
    // LUT tile = 256*16*8 = 32 KiB fits the 64 KiB WRAM.
    LutMapping m;
    m.ns_tile = 16384;
    m.fs_tile = 8;
    m.nm_tile = 64;
    m.fm_tile = 8;
    m.cbm_tile = 16;
    m.order = TraversalOrder::NCF;
    m.scheme = LutLoadScheme::Static;
    std::string reason;
    EXPECT_TRUE(mappingIsLegal(upmemPlatform(), bertLargeFfn1(), m,
                               &reason))
        << reason;
}

TEST(CostModel, IllegalMappingYieldsNoCost)
{
    LutMapping m = referenceMapping();
    m.fs_tile = 3;
    LutCostBreakdown cost =
        evaluateLutMapping(upmemPlatform(), bertLargeFfn1(), m);
    EXPECT_FALSE(cost.legal);
    EXPECT_FALSE(cost.illegal_reason.empty());
}

TEST(CostModel, BreakdownComponentsArePositive)
{
    LutCostBreakdown cost = evaluateLutMapping(
        upmemPlatform(), bertLargeFfn1(), referenceMapping());
    ASSERT_TRUE(cost.legal);
    EXPECT_GT(cost.t_sub_index, 0.0);
    EXPECT_GT(cost.t_sub_lut, 0.0);
    EXPECT_GT(cost.t_sub_output, 0.0);
    EXPECT_GT(cost.t_ld_lut, 0.0);
    EXPECT_GT(cost.t_reduce, 0.0);
    EXPECT_NEAR(cost.total(),
                cost.subLutTotal() + cost.microKernelTotal() +
                    cost.kernel_launch,
                1e-12);
}

TEST(CostModel, ReduceLatencyMatchesThroughput)
{
    // Accumulation work: ns * fs * cb adds at the PE add rate dominates
    // the micro-kernel (paper Section 6.6: accumulation latency takes up
    // most of the execution).
    const PimPlatformConfig platform = upmemPlatform();
    const LutWorkloadShape shape = bertLargeFfn1();
    const LutMapping m = referenceMapping();
    const LutCostBreakdown cost = evaluateLutMapping(platform, shape, m);
    const double adds = static_cast<double>(m.ns_tile) * m.fs_tile *
                        shape.cb;
    EXPECT_GE(cost.t_reduce, adds / platform.pe_add_ops_per_s);
}

TEST(CostModel, TraversalOrderBarelyMattersNearOptimum)
{
    // Paper Figure 13-(d): around the best mapping, traversal order
    // brings little divergence because accumulation dominates the
    // micro-kernel on UPMEM's wimpy PEs.
    const LutWorkloadShape shape = bertLargeFfn1();
    AutoTuner tuner(upmemPlatform());
    AutoTuneResult best = tuner.tune(shape);
    ASSERT_TRUE(best.found);

    double lo = 1e30, hi = 0.0;
    for (TraversalOrder order : kAllTraversalOrders) {
        LutMapping m = best.mapping;
        m.order = order;
        const LutCostBreakdown cost =
            evaluateLutMapping(upmemPlatform(), shape, m);
        if (!cost.legal)
            continue;
        lo = std::min(lo, cost.total());
        hi = std::max(hi, cost.total());
    }
    EXPECT_LT(hi / lo, 1.35);
}

TEST(CostModel, FewerPesIsSlower)
{
    // Same workload on half the PEs (double ns_tile) must not be faster.
    const LutWorkloadShape shape = bertLargeFfn1();
    LutMapping full = referenceMapping();
    LutMapping half = referenceMapping();
    half.ns_tile *= 2;
    half.nm_tile = full.nm_tile;
    const double t_full =
        evaluateLutMapping(upmemPlatform(), shape, full).total();
    const double t_half =
        evaluateLutMapping(upmemPlatform(), shape, half).total();
    EXPECT_GT(t_half, t_full);
}

TEST(CostModel, LinkBytesCountUniquePayloads)
{
    const LutWorkloadShape shape = bertLargeFfn1();
    const LutCostBreakdown cost = evaluateLutMapping(
        upmemPlatform(), shape, referenceMapping());
    const double expected =
        32768.0 * 256 * 2 + 256.0 * 16 * 4096 * 1 + 32768.0 * 4096 * 4;
    EXPECT_NEAR(cost.link_bytes, expected, 1.0);
}

TEST(CostModel, BufferBytesPerScheme)
{
    const PimPlatformConfig platform = upmemPlatform();
    const LutWorkloadShape shape = bertLargeFfn1();

    LutMapping m = referenceMapping();
    m.scheme = LutLoadScheme::CoarseGrain;
    const double coarse = mappingBufferBytes(platform, shape, m);
    // idx: 8*16*2 = 256; out: 8*64*4 = 2048; lut: 2*16*8*1 = 256.
    EXPECT_NEAR(coarse, 256.0 + 2048.0 + 256.0, 1e-9);

    m.scheme = LutLoadScheme::FineGrain;
    m.f_load_tile = 8;
    const double fine = mappingBufferBytes(platform, shape, m);
    EXPECT_NEAR(fine, 256.0 + 2048.0 + 16.0 * 8.0, 1e-9);
}

} // namespace
} // namespace pimdl
